// Failure injection on the Kubernetes substrate: the shared harness replays
// the fault plan against the full operator/pod/handshake machinery, so the
// failure-adjacent races (crash during an in-flight rescale handshake, a
// second crash inside a recovery's downtime window, budget kills racing
// pending handshakes) get exercised with every operator-level overhead.

#include "opk/experiment.hpp"

#include <gtest/gtest.h>

#include "schedsim/calibrate.hpp"

namespace ehpc::opk {
namespace {

using elastic::JobClass;
using elastic::PolicyMode;
using schedsim::SubmittedJob;

SubmittedJob job(int id, JobClass cls, int priority, double submit) {
  SubmittedJob j;
  j.spec = elastic::spec_for_class(cls, id, priority);
  j.job_class = cls;
  j.submit_time = submit;
  return j;
}

ExperimentConfig config(PolicyMode mode, double gap = 180.0) {
  ExperimentConfig cfg;
  cfg.policy.mode = mode;
  cfg.policy.rescale_gap_s = gap;
  return cfg;
}

TEST(ClusterFaults, CrashRollsBackAndChargesRecovery) {
  auto workloads = schedsim::analytic_workloads();
  ExperimentConfig cfg = config(PolicyMode::kElastic);
  cfg.faults.crash_times = {60.0};
  cfg.faults.checkpoint_period_s = 25.0;
  ClusterExperiment exp(cfg, workloads);
  const auto result = exp.run({job(0, JobClass::kMedium, 3, 0.0)});
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_FALSE(result.jobs[0].failed);
  EXPECT_GT(result.jobs[0].recovery_s, 0.0);
  EXPECT_EQ(result.metrics.failures, 1.0);
  EXPECT_LT(result.metrics.goodput, 1.0);
}

TEST(ClusterFaults, CrashDuringInFlightRescaleHandshakes) {
  // rescale_gap 0 keeps signal -> boundary -> ack handshakes almost always
  // in flight; a crash chain then repeatedly lands inside them. Every job
  // must still run to completion with its recovery downtime accounted.
  auto workloads = schedsim::analytic_workloads();
  for (auto& [cls, w] : workloads) w.total_steps = 2000;
  ExperimentConfig cfg = config(PolicyMode::kElastic, 0.0);
  cfg.faults.crash_mtbf_s = 60.0;
  cfg.faults.checkpoint_period_s = 30.0;
  ClusterExperiment exp(cfg, workloads);
  std::vector<SubmittedJob> mix;
  const JobClass classes[] = {JobClass::kXLarge, JobClass::kSmall,
                              JobClass::kLarge, JobClass::kMedium};
  for (int i = 0; i < 12; ++i) {
    mix.push_back(job(i, classes[i % 4], 1 + (i * 3) % 5, 1.0 * i));
  }
  const auto result = exp.run(mix);
  ASSERT_EQ(result.jobs.size(), 12u);
  for (const auto& rec : result.jobs) EXPECT_FALSE(rec.failed);
  EXPECT_GT(result.rescale_count, 0);
  EXPECT_GT(result.metrics.failures, 0.0);
  EXPECT_GT(result.metrics.recovery_time_s, 0.0);
}

TEST(ClusterFaults, SecondCrashInsideRecoveryDowntime) {
  // Detection alone is 5 s, so the second crash lands inside the first
  // recovery's downtime while the job's completion event points past it.
  // Both rollbacks must be charged and the job still completes.
  auto workloads = schedsim::analytic_workloads();
  ExperimentConfig cfg = config(PolicyMode::kElastic);
  cfg.faults.crash_times = {60.0, 61.0};
  cfg.faults.checkpoint_period_s = 25.0;
  ClusterExperiment exp(cfg, workloads);
  const auto result = exp.run({job(0, JobClass::kMedium, 3, 0.0)});
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_FALSE(result.jobs[0].failed);
  EXPECT_EQ(result.metrics.failures, 2.0);
  // Two detections' worth of downtime at minimum.
  EXPECT_GT(result.jobs[0].recovery_s, 10.0);
}

TEST(ClusterFaults, BudgetKillFreesPodsForWaitingJobs) {
  // prun-style maxFailedNodes=0: the first crash permanently fails the
  // widest running job. Its pods must be released back to the cluster so
  // the surviving jobs can still finish.
  auto workloads = schedsim::analytic_workloads();
  ExperimentConfig cfg = config(PolicyMode::kElastic);
  cfg.faults.crash_times = {60.0};
  cfg.faults.max_failed_nodes = 0;
  ClusterExperiment exp(cfg, workloads);
  const auto result = exp.run({job(0, JobClass::kLarge, 3, 0.0),
                               job(1, JobClass::kSmall, 2, 30.0)});
  ASSERT_EQ(result.jobs.size(), 2u);
  int failed = 0;
  for (const auto& rec : result.jobs) failed += rec.failed ? 1 : 0;
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(result.metrics.jobs_failed, 1.0);
  // All pods are gone once every job has completed or been killed.
  EXPECT_EQ(exp.cluster().bound_cpus(), 0);
}

TEST(ClusterFaults, EvictionsDoNotChargeTheFailureBudget) {
  auto workloads = schedsim::analytic_workloads();
  ExperimentConfig cfg = config(PolicyMode::kElastic);
  cfg.faults.evict_times = {60.0, 80.0};
  cfg.faults.max_failed_nodes = 0;
  cfg.faults.checkpoint_period_s = 50.0;
  ClusterExperiment exp(cfg, workloads);
  const auto result = exp.run({job(0, JobClass::kMedium, 3, 0.0)});
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_FALSE(result.jobs[0].failed);
  EXPECT_EQ(result.metrics.evictions, 2.0);
  EXPECT_EQ(result.metrics.jobs_failed, 0.0);
}

TEST(ClusterFaults, DomainCrashKillsResidentJobsAndHeals) {
  // A 32-slot failure domain dies at 60 s with two narrow jobs resident in
  // it. Both are rolled back (one correlated event, one crash per victim),
  // their worker pods are deleted through the k8s store in one burst, and
  // the controller's heal path recreates the ranks so both still finish.
  auto workloads = schedsim::analytic_workloads();
  ExperimentConfig cfg = config(PolicyMode::kRigidMin);
  cfg.faults.domain_sizes = {32, 32};
  cfg.faults.domain_crashes = {{60.0, 0}};
  cfg.faults.checkpoint_period_s = 25.0;
  ClusterExperiment exp(cfg, workloads);
  // Rigid-min keeps both jobs at min width, so they stay on the lowest
  // slots — both inside domain 0 when the crash lands.
  const auto result = exp.run({job(0, JobClass::kMedium, 3, 0.0),
                               job(1, JobClass::kSmall, 2, 5.0)});
  ASSERT_EQ(result.jobs.size(), 2u);
  for (const auto& rec : result.jobs) {
    EXPECT_FALSE(rec.failed);
    EXPECT_GT(rec.recovery_s, 0.0);
  }
  EXPECT_EQ(result.metrics.correlated_failures, 1.0);
  EXPECT_EQ(result.metrics.failures, 2.0);
  EXPECT_LT(result.metrics.goodput, 1.0);
  EXPECT_EQ(exp.cluster().bound_cpus(), 0);
}

TEST(ClusterFaults, DomainCrashOutsideResidentSlotsIsHarmless) {
  // The second domain holds no job at crash time: the crash is a no-op —
  // no victims, no rollback, no correlated-failure event recorded, and the
  // run is indistinguishable from one without the crash (recovery_s still
  // carries the periodic checkpoint write pauses in both).
  auto workloads = schedsim::analytic_workloads();
  auto run_with = [&](bool crash) {
    ExperimentConfig cfg = config(PolicyMode::kRigidMin);
    cfg.faults.domain_sizes = {32, 32};
    if (crash) cfg.faults.domain_crashes = {{60.0, 1}};
    cfg.faults.checkpoint_period_s = 25.0;
    ClusterExperiment exp(cfg, workloads);
    const auto result = exp.run({job(0, JobClass::kSmall, 3, 0.0)});
    EXPECT_EQ(result.metrics.failures, 0.0);
    EXPECT_EQ(result.metrics.correlated_failures, 0.0);
    return result.jobs.at(0).complete_time;
  };
  EXPECT_DOUBLE_EQ(run_with(true), run_with(false));
}

TEST(ClusterFaults, StragglerSlowsJobUntilRescale) {
  auto workloads = schedsim::analytic_workloads();
  auto run_with = [&](double factor) {
    ExperimentConfig cfg = config(PolicyMode::kElastic);
    cfg.faults.straggler_at_s = 60.0;
    cfg.faults.straggler_factor = factor;
    ClusterExperiment exp(cfg, workloads);
    const auto result = exp.run({job(0, JobClass::kMedium, 3, 0.0)});
    return result.jobs.at(0).complete_time;
  };
  EXPECT_GT(run_with(2.0), run_with(1.0));
}

}  // namespace
}  // namespace ehpc::opk
