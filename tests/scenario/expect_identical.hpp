#pragma once

// Shared bit-identity assertions for the determinism tests: every RunMetrics
// field is compared with EXPECT_EQ (not EXPECT_NEAR) because the sweep
// engine's merge order is defined to be independent of thread scheduling.
// Adding a RunMetrics field? Extend expect_identical here and both
// determinism suites pick it up.

#include <gtest/gtest.h>

#include <string>

#include "scenario/sweep.hpp"

namespace ehpc::scenario {

inline void expect_identical(const elastic::RunMetrics& a,
                             const elastic::RunMetrics& b,
                             const std::string& where) {
  EXPECT_EQ(a.total_time_s, b.total_time_s) << where;
  EXPECT_EQ(a.utilization, b.utilization) << where;
  EXPECT_EQ(a.weighted_response_s, b.weighted_response_s) << where;
  EXPECT_EQ(a.weighted_completion_s, b.weighted_completion_s) << where;
  EXPECT_EQ(a.lb_post_ratio, b.lb_post_ratio) << where;
  EXPECT_EQ(a.lb_migrations_per_step, b.lb_migrations_per_step) << where;
  EXPECT_EQ(a.lb_steps, b.lb_steps) << where;
  EXPECT_EQ(a.failures, b.failures) << where;
  EXPECT_EQ(a.evictions, b.evictions) << where;
  EXPECT_EQ(a.jobs_failed, b.jobs_failed) << where;
  EXPECT_EQ(a.jobs_abandoned, b.jobs_abandoned) << where;
  EXPECT_EQ(a.jobs_timed_out, b.jobs_timed_out) << where;
  EXPECT_EQ(a.recovery_time_s, b.recovery_time_s) << where;
  EXPECT_EQ(a.lost_work_s, b.lost_work_s) << where;
  EXPECT_EQ(a.goodput, b.goodput) << where;
  EXPECT_EQ(a.correlated_failures, b.correlated_failures) << where;
  EXPECT_EQ(a.storm_peak_restorers, b.storm_peak_restorers) << where;
  EXPECT_EQ(a.storm_delay_s, b.storm_delay_s) << where;
}

inline void expect_identical(const SweepResult& serial,
                             const SweepResult& parallel) {
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t p = 0; p < serial.points.size(); ++p) {
    EXPECT_EQ(serial.points[p].x, parallel.points[p].x);
    ASSERT_EQ(serial.points[p].metrics.size(),
              parallel.points[p].metrics.size());
    for (const auto& [mode, metrics] : serial.points[p].metrics) {
      expect_identical(metrics, parallel.points[p].metrics.at(mode),
                       "point " + std::to_string(p) + " " + to_string(mode));
    }
  }
}

}  // namespace ehpc::scenario
