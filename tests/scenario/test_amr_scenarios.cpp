// The AMR irregular-workload scenarios: registry entries, per-point workload
// re-calibration, LB-metric propagation into RunMetrics, and parallel
// determinism on both substrates (these run in the tsan/asan CI lanes like
// every scenario test — keep the specs small).

#include <gtest/gtest.h>

#include "charm/load_balancer.hpp"
#include "expect_identical.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

namespace ehpc::scenario {
namespace {

using elastic::PolicyMode;
using elastic::RunMetrics;

/// A small AMR spec: tight submissions and an eager rescale gap so elastic
/// actually shrinks/expands, few jobs/repeats so TSan stays fast.
ScenarioSpec small_amr_spec() {
  ScenarioSpec spec;
  spec.app = "amr";
  spec.num_jobs = 6;
  spec.submission_gap_s = 30.0;
  spec.rescale_gap_s = 0.0;
  spec.repeats = 2;
  spec.policies = {PolicyMode::kElastic};
  return spec;
}

TEST(AmrScenarios, AllThreeAreRegisteredAndValid) {
  auto& registry = ScenarioRegistry::instance();
  for (const char* name : {"amr_imbalance", "amr_rescale", "amr_lb_ablation"}) {
    const ScenarioSpec* spec = registry.find(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_EQ(spec->app, "amr") << name;
    EXPECT_NO_THROW(spec->validate()) << name;
  }
  EXPECT_EQ(registry.require("amr_imbalance").axis, SweepAxis::kRefineRate);
  EXPECT_EQ(registry.require("amr_rescale").axis, SweepAxis::kRescaleGap);
  EXPECT_EQ(registry.require("amr_lb_ablation").axis, SweepAxis::kLbStrategy);
}

TEST(AmrScenarios, SpecValidationRejectsBadAmrParameters) {
  ScenarioSpec spec = small_amr_spec();
  spec.app = "lulesh";
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = small_amr_spec();
  spec.refine_rate = 0.9;
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = small_amr_spec();
  spec.lb_strategy = "bogus";
  EXPECT_THROW(spec.validate(), ConfigError);

  // lb_strategy sweep values must index load_balancer_names().
  spec = small_amr_spec();
  spec.axis = SweepAxis::kLbStrategy;
  spec.axis_values = {0.0, 4.0};
  EXPECT_THROW(spec.validate(), ConfigError);
  spec.axis_values = {0.5};
  EXPECT_THROW(spec.validate(), ConfigError);

  // refine_rate sweep values obey the same range as the scalar field.
  spec = small_amr_spec();
  spec.axis = SweepAxis::kRefineRate;
  spec.axis_values = {0.0, 0.9};
  EXPECT_THROW(spec.validate(), ConfigError);
  spec.axis_values = {-0.1};
  EXPECT_THROW(spec.validate(), ConfigError);

  // Calibration axes require the AMR app.
  spec = small_amr_spec();
  spec.app = "jacobi";
  spec.axis = SweepAxis::kRefineRate;
  spec.axis_values = {0.0, 0.1};
  EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(AmrScenarios, ConfigKeysRoundTripThroughSpecFromConfig) {
  const char* argv[] = {"test", "scenario=amr_lb_ablation", "app=amr",
                        "refine_rate=0.2", "lb_strategy=refine", "repeats=2"};
  const Config cfg = Config::from_args(6, argv, scenario_config_keys());
  const ScenarioSpec spec = resolve_scenario(cfg);
  EXPECT_EQ(spec.name, "amr_lb_ablation");
  EXPECT_DOUBLE_EQ(spec.refine_rate, 0.2);
  EXPECT_EQ(spec.lb_strategy, "refine");
  EXPECT_NE(describe(spec).find("lb_strategy=refine"), std::string::npos);
}

TEST(AmrScenarios, ElasticChurnSurfacesLbMetrics) {
  // With rescale_gap 0 and contention, elastic shrinks/expands; every
  // rescale must surface the calibrated imbalance profile into RunMetrics.
  const auto metrics = compare_policies(small_amr_spec(), 1);
  const RunMetrics& m = metrics.at(PolicyMode::kElastic);
  ASSERT_GT(m.lb_steps, 0.0);
  EXPECT_GT(m.lb_post_ratio, 1.0);
  EXPECT_GT(m.lb_migrations_per_step, 0.0);
}

TEST(AmrScenarios, NullLbShowsWorseImbalanceThanGreedy) {
  ScenarioSpec spec = small_amr_spec();
  spec.lb_strategy = "null";
  const auto null_m =
      compare_policies(spec, 1).at(PolicyMode::kElastic);
  spec.lb_strategy = "greedy";
  const auto greedy_m =
      compare_policies(spec, 1).at(PolicyMode::kElastic);
  ASSERT_GT(null_m.lb_steps, 0.0);
  EXPECT_GT(null_m.lb_post_ratio, greedy_m.lb_post_ratio);
  EXPECT_EQ(null_m.lb_migrations_per_step, 0.0);
  EXPECT_GT(greedy_m.lb_migrations_per_step, 0.0);
}

TEST(AmrScenarios, RefineRateSweepRecalibratesPerPoint) {
  ScenarioSpec spec = small_amr_spec();
  spec.axis = SweepAxis::kRefineRate;
  spec.axis_values = {0.0, 0.25};
  const auto sweep = run_sweep(spec, 1);
  ASSERT_EQ(sweep.points.size(), 2u);
  // More refinement -> more work -> longer completions.
  EXPECT_GT(
      sweep.points[1].metrics.at(PolicyMode::kElastic).weighted_completion_s,
      sweep.points[0].metrics.at(PolicyMode::kElastic).weighted_completion_s);
}

TEST(AmrScenarios, ImbalanceSweepIsBitIdenticalAcrossThreadCounts) {
  ScenarioSpec spec = small_amr_spec();
  spec.axis = SweepAxis::kRefineRate;
  spec.axis_values = {0.0, 0.2};
  expect_identical(run_sweep(spec, 1), run_sweep(spec, 8));
}

TEST(AmrScenarios, LbAblationSweepIsBitIdenticalAcrossThreadCounts) {
  ScenarioSpec spec = small_amr_spec();
  spec.axis = SweepAxis::kLbStrategy;
  spec.axis_values = {0.0, 1.0, 2.0};
  expect_identical(run_sweep(spec, 1), run_sweep(spec, 8));
}

TEST(AmrScenarios, ClusterSubstrateIsBitIdenticalAcrossThreadCounts) {
  ScenarioSpec spec = small_amr_spec();
  spec.substrate = Substrate::kCluster;
  spec.num_jobs = 4;
  spec.axis = SweepAxis::kRefineRate;
  spec.axis_values = {0.0, 0.2};
  expect_identical(run_sweep(spec, 1), run_sweep(spec, 8));
}

TEST(AmrScenarios, BothSubstratesRunTheRegisteredScenarios) {
  // The registered specs themselves, shrunk to smoke size, on each
  // substrate (the acceptance bar for "runnable on both backends").
  for (const char* name : {"amr_imbalance", "amr_rescale", "amr_lb_ablation"}) {
    for (const Substrate substrate :
         {Substrate::kSchedSim, Substrate::kCluster}) {
      ScenarioSpec spec = ScenarioRegistry::instance().require(name);
      spec.substrate = substrate;
      spec.repeats = 1;
      spec.num_jobs = 3;
      if (spec.axis_values.size() > 2) spec.axis_values.resize(2);
      const auto sweep = run_sweep(spec, 2);
      ASSERT_EQ(sweep.points.size(), spec.axis_values.size())
          << name << " on " << to_string(substrate);
    }
  }
}

}  // namespace
}  // namespace ehpc::scenario
