#include "scenario/backend.hpp"

#include <gtest/gtest.h>

namespace ehpc::scenario {
namespace {

using elastic::PolicyMode;

ScenarioSpec fast_spec() {
  ScenarioSpec spec;
  spec.calibrated = false;  // analytic curves: no minicharm runs
  spec.num_jobs = 6;
  spec.repeats = 2;
  return spec;
}

// The pinned random mix for seed 2025 (6 jobs, 90 s apart): classes, ids,
// priorities and submission times must never drift, or every committed
// baseline silently changes meaning.
TEST(ScenarioBackend, MixSequenceIsPinnedForSeed2025) {
  const auto mix = make_mix(fast_spec(), 2025);
  ASSERT_EQ(mix.size(), 6u);
  const struct {
    int id;
    elastic::JobClass cls;
    int priority;
    double submit;
  } expected[] = {
      {0, elastic::JobClass::kSmall, 3, 0.0},
      {1, elastic::JobClass::kSmall, 3, 90.0},
      {2, elastic::JobClass::kSmall, 5, 180.0},
      {3, elastic::JobClass::kMedium, 4, 270.0},
      {4, elastic::JobClass::kXLarge, 4, 360.0},
      {5, elastic::JobClass::kXLarge, 2, 450.0},
  };
  for (std::size_t i = 0; i < mix.size(); ++i) {
    EXPECT_EQ(mix[i].spec.id, expected[i].id) << i;
    EXPECT_EQ(mix[i].job_class, expected[i].cls) << i;
    EXPECT_EQ(mix[i].spec.priority, expected[i].priority) << i;
    EXPECT_DOUBLE_EQ(mix[i].submit_time, expected[i].submit) << i;
  }
}

TEST(ScenarioBackend, MixRespectsSpecJobCountAndGap) {
  ScenarioSpec spec = fast_spec();
  spec.num_jobs = 9;
  spec.submission_gap_s = 30.0;
  const auto mix = make_mix(spec, 7);
  ASSERT_EQ(mix.size(), 9u);
  EXPECT_DOUBLE_EQ(mix[8].submit_time, 8 * 30.0);
}

TEST(ScenarioBackend, SchedSimBackendMatchesDirectSimulator) {
  const ScenarioSpec spec = fast_spec();
  const auto workloads = workloads_for(spec);
  const auto mix = make_mix(spec, 2025);
  const auto policy = policy_for(spec, PolicyMode::kElastic);

  auto backend = make_backend(spec, policy, workloads);
  const auto via_backend = backend->run(mix);

  schedsim::SchedSimulator simulator(spec.total_slots(), policy, workloads);
  const auto direct = simulator.run(mix);

  EXPECT_DOUBLE_EQ(via_backend.metrics.total_time_s, direct.metrics.total_time_s);
  EXPECT_DOUBLE_EQ(via_backend.metrics.utilization, direct.metrics.utilization);
  EXPECT_EQ(via_backend.rescale_count, direct.rescale_count);
}

TEST(ScenarioBackend, BackendIsReusableAndDeterministic) {
  const ScenarioSpec spec = fast_spec();
  auto backend = make_backend(spec, policy_for(spec, PolicyMode::kElastic),
                              workloads_for(spec));
  const auto mix = make_mix(spec, 42);
  const auto first = backend->run(mix);
  const auto second = backend->run(mix);
  EXPECT_DOUBLE_EQ(first.metrics.total_time_s, second.metrics.total_time_s);
  EXPECT_DOUBLE_EQ(first.metrics.utilization, second.metrics.utilization);
}

TEST(ScenarioBackend, ClusterBackendRunsWithOperatorOverheads) {
  ScenarioSpec spec = fast_spec();
  spec.substrate = Substrate::kCluster;
  spec.num_jobs = 3;
  const auto workloads = workloads_for(spec);
  const auto mix = make_mix(spec, 2025);
  const auto policy = policy_for(spec, PolicyMode::kElastic);

  auto cluster_backend = make_backend(spec, policy, workloads);
  const auto actual = cluster_backend->run(mix);
  EXPECT_EQ(actual.jobs.size(), 3u);

  // The same mix through the pure simulator finishes no later: the cluster
  // substrate adds pod scheduling/startup and handshake latencies.
  ScenarioSpec sim_spec = spec;
  sim_spec.substrate = Substrate::kSchedSim;
  const auto simulated = make_backend(sim_spec, policy, workloads)->run(mix);
  EXPECT_GE(actual.metrics.total_time_s, simulated.metrics.total_time_s);
}

TEST(ScenarioBackend, PolicyForCarriesTheRescaleGap) {
  ScenarioSpec spec = fast_spec();
  spec.rescale_gap_s = 123.0;
  const auto policy = policy_for(spec, PolicyMode::kMoldable);
  EXPECT_EQ(policy.mode, PolicyMode::kMoldable);
  EXPECT_DOUBLE_EQ(policy.rescale_gap_s, 123.0);
}

}  // namespace
}  // namespace ehpc::scenario
