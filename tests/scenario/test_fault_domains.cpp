// Correlated failure domains and recovery storms: registry entries, config
// keys, FaultPlan coverage of the new fields, correlated metrics on both
// substrates, storm restore sharing, and failure-trace replay determinism
// (these run in the tsan/asan CI lanes like every scenario test — keep the
// specs small).

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "common/error.hpp"
#include "expect_identical.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

namespace ehpc::scenario {
namespace {

using elastic::PolicyMode;
using elastic::RunMetrics;

std::string write_temp(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::trunc);
  out << body;
  return path;
}

/// A small correlated-loss spec: few short-gap jobs, four 16-slot domains
/// and one domain crash while most jobs are resident, single policy so
/// TSan stays fast.
ScenarioSpec small_domain_spec() {
  ScenarioSpec spec;
  spec.num_jobs = 6;
  spec.submission_gap_s = 30.0;
  spec.repeats = 2;
  spec.policies = {PolicyMode::kElastic};
  spec.faults.domain_sizes = {16, 16, 16, 16};
  spec.faults.domain_crashes = {{250.0, 0}};
  spec.faults.checkpoint_period_s = 100.0;
  return spec;
}

TEST(FaultDomainScenarios, BothAreRegisteredAndValid) {
  auto& registry = ScenarioRegistry::instance();
  for (const char* name : {"fault_correlated", "fault_storm"}) {
    const ScenarioSpec* spec = registry.find(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_FALSE(spec->faults.empty()) << name;
    EXPECT_FALSE(spec->faults.domain_sizes.empty()) << name;
    EXPECT_FALSE(spec->faults.domain_crashes.empty()) << name;
    EXPECT_NO_THROW(spec->validate()) << name;
  }
  EXPECT_GT(registry.require("fault_storm").faults.restore_bandwidth, 0.0);
}

TEST(FaultDomainScenarios, PlanEmptyAndValidateCoverNewFields) {
  schedsim::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.domain_sizes = {16};  // a domain map alone schedules nothing
  EXPECT_TRUE(plan.empty());
  plan.domain_crashes = {{100.0, 0}};
  EXPECT_FALSE(plan.empty());

  plan = {};
  plan.failure_trace_path = "outage.csv";
  EXPECT_FALSE(plan.empty());

  // A domain crash needs a domain map, an in-range index and a
  // non-negative time; restore_bandwidth and domain sizes must be sane.
  plan = {};
  plan.domain_crashes = {{100.0, 0}};
  EXPECT_THROW(plan.validate(), PreconditionError);
  plan.domain_sizes = {16, 16};
  EXPECT_NO_THROW(plan.validate());
  plan.domain_crashes = {{100.0, 2}};
  EXPECT_THROW(plan.validate(), PreconditionError);
  plan.domain_crashes = {{-1.0, 0}};
  EXPECT_THROW(plan.validate(), PreconditionError);
  plan.domain_crashes.clear();
  plan.domain_sizes = {16, 0};
  EXPECT_THROW(plan.validate(), PreconditionError);
  plan.domain_sizes = {16};
  plan.restore_bandwidth = -1.0;
  EXPECT_THROW(plan.validate(), PreconditionError);
}

TEST(FaultDomainScenarios, ConfigKeysRoundTripThroughSpecFromConfig) {
  const char* argv[] = {"test",
                        "scenario=fault_correlated",
                        "fault_domains=16,16,32",
                        "fault_domain_crash_times=500:1,1300:2",
                        "restore_bandwidth=2",
                        "repeats=2"};
  const Config cfg = Config::from_args(6, argv, scenario_config_keys());
  const ScenarioSpec spec = resolve_scenario(cfg);
  EXPECT_EQ(spec.faults.domain_sizes, (std::vector<int>{16, 16, 32}));
  ASSERT_EQ(spec.faults.domain_crashes.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.faults.domain_crashes[0].time_s, 500.0);
  EXPECT_EQ(spec.faults.domain_crashes[0].domain, 1);
  EXPECT_EQ(spec.faults.domain_crashes[1].domain, 2);
  EXPECT_DOUBLE_EQ(spec.faults.restore_bandwidth, 2.0);
  const std::string text = describe(spec);
  EXPECT_NE(text.find("fault_domains=16,16,32"), std::string::npos);
  EXPECT_NE(text.find("fault_domain_crash_times=500:1,1300:2"),
            std::string::npos);
  EXPECT_NE(text.find("restore_bandwidth=2"), std::string::npos);
}

TEST(FaultDomainScenarios, BadConfigValuesAreRejected) {
  for (const char* bad :
       {"fault_domains=16,-4", "fault_domains=16,x", "fault_domains=",
        "fault_domain_crash_times=500", "fault_domain_crash_times=x:1",
        "fault_domain_crash_times=500:-1",
        "fault_domain_crash_times=500:1.5"}) {
    const char* argv[] = {"test", "scenario=fault_correlated", bad};
    const Config cfg = Config::from_args(3, argv, scenario_config_keys());
    EXPECT_THROW(resolve_scenario(cfg), ConfigError) << bad;
  }
  // The domain map must fit the cluster.
  const char* argv[] = {"test", "scenario=fault_correlated",
                        "fault_domains=64,64"};
  const Config cfg = Config::from_args(3, argv, scenario_config_keys());
  EXPECT_THROW(resolve_scenario(cfg), ConfigError);
}

TEST(FaultDomainScenarios, DomainCrashSurfacesCorrelatedMetrics) {
  const auto m = compare_policies(small_domain_spec(), 1)
                     .at(PolicyMode::kElastic);
  EXPECT_GT(m.correlated_failures, 0.0);
  EXPECT_GT(m.failures, 0.0);
  EXPECT_GT(m.recovery_time_s, 0.0);
  EXPECT_LT(m.goodput, 1.0);
  EXPECT_GT(m.goodput, 0.0);
}

TEST(FaultDomainScenarios, SchedSimIsBitIdenticalAcrossThreadCounts) {
  const ScenarioSpec spec = small_domain_spec();
  expect_identical(run_sweep(spec, 1), run_sweep(spec, 8));
}

TEST(FaultDomainScenarios, ClusterIsBitIdenticalAcrossThreadCounts) {
  ScenarioSpec spec = small_domain_spec();
  spec.substrate = Substrate::kCluster;
  spec.num_jobs = 4;
  expect_identical(run_sweep(spec, 1), run_sweep(spec, 8));
}

TEST(FaultDomainScenarios, ClusterSeesTheCorrelatedBurst) {
  // Same spec as the schedsim burst test: six jobs keep domain 0 occupied
  // at the crash instant (four short-gap jobs all finish before 250 s).
  ScenarioSpec spec = small_domain_spec();
  spec.substrate = Substrate::kCluster;
  const auto m = compare_policies(spec, 1).at(PolicyMode::kElastic);
  EXPECT_GT(m.correlated_failures, 0.0);
  EXPECT_GT(m.failures, 0.0);
  EXPECT_GT(m.recovery_time_s, 0.0);
}

TEST(FaultDomainScenarios, RestoreBandwidthSharingDelaysStormRecovery) {
  // A 32-slot domain crash sends several jobs into restore at once. With
  // unlimited bandwidth the restores overlap freely; with a single restore
  // lane they share it and each one stretches.
  ScenarioSpec spec;
  spec.num_jobs = 8;
  spec.submission_gap_s = 20.0;
  spec.repeats = 2;
  spec.policies = {PolicyMode::kElastic};
  spec.faults.domain_sizes = {32, 32};
  spec.faults.domain_crashes = {{300.0, 0}};
  spec.faults.checkpoint_period_s = 100.0;

  spec.faults.restore_bandwidth = 0.0;
  const auto isolated = compare_policies(spec, 1).at(PolicyMode::kElastic);
  spec.faults.restore_bandwidth = 1.0;
  const auto shared = compare_policies(spec, 1).at(PolicyMode::kElastic);

  ASSERT_GT(isolated.correlated_failures, 0.0);
  EXPECT_EQ(isolated.storm_delay_s, 0.0);
  // storm_peak_restorers is a per-run peak averaged over repeats, so any
  // value above 1 proves restores overlapped in at least one repeat.
  EXPECT_GT(shared.storm_peak_restorers, 1.0);
  EXPECT_GT(shared.storm_delay_s, 0.0);
  EXPECT_GT(shared.recovery_time_s, isolated.recovery_time_s);
  // Unlimited bandwidth still reports how deep the storm got.
  EXPECT_GT(isolated.storm_peak_restorers, 1.0);
}

TEST(FaultDomainScenarios, FailureTraceReplayMatchesExplicitPlan) {
  // The same outage expressed as a CSV trace and as explicit plan events
  // must be bit-identical — and the trace replay itself must be
  // deterministic across thread counts (the resolve happens once per
  // backend construction, before any parallel repeat).
  const std::string path = write_temp("domain_outage.csv",
                                      "250,domain,0\n"
                                      "400,crash\n");
  ScenarioSpec explicit_spec = small_domain_spec();
  explicit_spec.faults.domain_crashes = {{250.0, 0}};
  explicit_spec.faults.crash_times = {400.0};

  ScenarioSpec traced = small_domain_spec();
  traced.faults.domain_crashes.clear();
  traced.faults.failure_trace_path = path;

  expect_identical(run_sweep(explicit_spec, 1), run_sweep(traced, 8));
}

}  // namespace
}  // namespace ehpc::scenario
