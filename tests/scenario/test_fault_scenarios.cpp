// The fault-injection scenario family: registry entries, spec keys and
// validation, recovery metrics on both substrates, and parallel determinism
// of fault sweeps (these run in the tsan/asan CI lanes like every scenario
// test — keep the specs small).

#include <gtest/gtest.h>

#include "expect_identical.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

namespace ehpc::scenario {
namespace {

using elastic::PolicyMode;
using elastic::RunMetrics;

/// A small faulty spec: few short-gap jobs, a crash chain and periodic
/// checkpoints, single policy so TSan stays fast.
ScenarioSpec small_fault_spec() {
  ScenarioSpec spec;
  spec.num_jobs = 6;
  spec.submission_gap_s = 30.0;
  spec.repeats = 2;
  spec.policies = {PolicyMode::kElastic};
  spec.faults.crash_mtbf_s = 400.0;
  spec.faults.checkpoint_period_s = 200.0;
  return spec;
}

TEST(FaultScenarios, AllThreeAreRegisteredAndValid) {
  auto& registry = ScenarioRegistry::instance();
  for (const char* name :
       {"fault_recovery", "fault_churn", "fault_lb_ablation"}) {
    const ScenarioSpec* spec = registry.find(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_FALSE(spec->faults.empty()) << name;
    EXPECT_NO_THROW(spec->validate()) << name;
  }
  EXPECT_EQ(registry.require("fault_churn").axis, SweepAxis::kFaultMtbf);
  EXPECT_EQ(registry.require("fault_lb_ablation").axis, SweepAxis::kLbStrategy);
  EXPECT_EQ(registry.require("fault_recovery").axis, SweepAxis::kNone);
}

TEST(FaultScenarios, SpecValidationRejectsBadFaultParameters) {
  ScenarioSpec spec = small_fault_spec();
  spec.faults.crash_times = {-1.0};
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = small_fault_spec();
  spec.faults.straggler_at_s = 10.0;
  spec.faults.straggler_factor = 0.5;
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = small_fault_spec();
  spec.faults.disk_factor = 0.0;
  EXPECT_THROW(spec.validate(), ConfigError);

  // Fault sweep values must be positive periods.
  spec = small_fault_spec();
  spec.faults.crash_mtbf_s = 0.0;
  spec.axis = SweepAxis::kFaultMtbf;
  spec.axis_values = {600.0, 0.0};
  EXPECT_THROW(spec.validate(), ConfigError);
  spec.axis = SweepAxis::kCheckpointPeriod;
  spec.axis_values = {-300.0};
  EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(FaultScenarios, ConfigKeysRoundTripThroughSpecFromConfig) {
  const char* argv[] = {"test",
                        "scenario=fault_recovery",
                        "fault_times=100,900",
                        "evict_times=500",
                        "fault_mtbf=0",
                        "checkpoint_period=250",
                        "straggler_at=50",
                        "straggler_factor=1.5",
                        "fault_detection=2",
                        "max_failed_nodes=3",
                        "repeats=2"};
  const Config cfg = Config::from_args(11, argv, scenario_config_keys());
  const ScenarioSpec spec = resolve_scenario(cfg);
  EXPECT_EQ(spec.name, "fault_recovery");
  ASSERT_EQ(spec.faults.crash_times.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.faults.crash_times[1], 900.0);
  ASSERT_EQ(spec.faults.evict_times.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.faults.checkpoint_period_s, 250.0);
  EXPECT_DOUBLE_EQ(spec.faults.straggler_at_s, 50.0);
  EXPECT_DOUBLE_EQ(spec.faults.straggler_factor, 1.5);
  EXPECT_DOUBLE_EQ(spec.faults.detection_s, 2.0);
  EXPECT_EQ(spec.faults.max_failed_nodes, 3);
  EXPECT_NE(describe(spec).find("fault_times=100,900"), std::string::npos);
  EXPECT_NE(describe(spec).find("max_failed_nodes=3"), std::string::npos);
}

TEST(FaultScenarios, CrashChainSurfacesRecoveryMetrics) {
  const auto metrics = compare_policies(small_fault_spec(), 1);
  const RunMetrics& m = metrics.at(PolicyMode::kElastic);
  EXPECT_GT(m.failures, 0.0);
  EXPECT_GT(m.recovery_time_s, 0.0);
  EXPECT_GT(m.lost_work_s, 0.0);
  EXPECT_LT(m.goodput, 1.0);
  EXPECT_GT(m.goodput, 0.0);
}

TEST(FaultScenarios, NoFaultPlanLeavesMetricsNeutral) {
  ScenarioSpec spec = small_fault_spec();
  spec.faults = schedsim::FaultPlan{};
  const auto m = compare_policies(spec, 1).at(PolicyMode::kElastic);
  EXPECT_EQ(m.failures, 0.0);
  EXPECT_EQ(m.evictions, 0.0);
  EXPECT_EQ(m.jobs_failed, 0.0);
  EXPECT_EQ(m.recovery_time_s, 0.0);
  EXPECT_EQ(m.lost_work_s, 0.0);
  EXPECT_EQ(m.goodput, 1.0);
}

TEST(FaultScenarios, CheckpointingReducesLostWork) {
  // Without checkpoints a crash rolls the job back to its start; frequent
  // checkpoints bound the rollback to at most one period of progress. A
  // single explicit crash (not an MTBF chain): with no checkpoints a chain
  // would legitimately never let a long job finish.
  ScenarioSpec spec = small_fault_spec();
  spec.faults.crash_mtbf_s = 0.0;
  spec.faults.crash_times = {150.0};
  spec.faults.checkpoint_period_s = 0.0;
  const auto none = compare_policies(spec, 1).at(PolicyMode::kElastic);
  spec.faults.checkpoint_period_s = 100.0;
  const auto frequent = compare_policies(spec, 1).at(PolicyMode::kElastic);
  ASSERT_GT(none.failures, 0.0);
  EXPECT_GT(none.lost_work_s, frequent.lost_work_s);
}

TEST(FaultScenarios, FailureBudgetKillsJobs) {
  ScenarioSpec spec = small_fault_spec();
  spec.faults.crash_mtbf_s = 150.0;
  spec.faults.checkpoint_period_s = 100.0;
  spec.faults.max_failed_nodes = 0;
  const auto m = compare_policies(spec, 1).at(PolicyMode::kElastic);
  EXPECT_GT(m.jobs_failed, 0.0);
  // A killed job contributes zero goodput.
  EXPECT_LT(m.goodput, 1.0);
}

TEST(FaultScenarios, MtbfSweepIsBitIdenticalAcrossThreadCounts) {
  ScenarioSpec spec = small_fault_spec();
  spec.faults.crash_mtbf_s = 0.0;
  spec.faults.max_failed_nodes = 2;
  spec.axis = SweepAxis::kFaultMtbf;
  spec.axis_values = {200.0, 800.0};
  expect_identical(run_sweep(spec, 1), run_sweep(spec, 8));
}

TEST(FaultScenarios, CheckpointPeriodSweepIsBitIdenticalAcrossThreadCounts) {
  ScenarioSpec spec = small_fault_spec();
  // Periods deliberately not aligned with the 400 s MTBF: a tick landing
  // exactly inside every crash's downtime would never snapshot progress.
  spec.faults.checkpoint_period_s = 0.0;
  spec.axis = SweepAxis::kCheckpointPeriod;
  spec.axis_values = {100.0, 250.0};
  expect_identical(run_sweep(spec, 1), run_sweep(spec, 8));
}

TEST(FaultScenarios, ClusterSubstrateIsBitIdenticalAcrossThreadCounts) {
  ScenarioSpec spec = small_fault_spec();
  spec.substrate = Substrate::kCluster;
  spec.num_jobs = 4;
  expect_identical(run_sweep(spec, 1), run_sweep(spec, 8));
}

TEST(FaultScenarios, BothSubstratesRunTheRegisteredScenarios) {
  // The registered specs themselves, shrunk to smoke size, on each
  // substrate (the acceptance bar for "runnable on both backends").
  for (const char* name :
       {"fault_recovery", "fault_churn", "fault_lb_ablation"}) {
    for (const Substrate substrate :
         {Substrate::kSchedSim, Substrate::kCluster}) {
      ScenarioSpec spec = ScenarioRegistry::instance().require(name);
      spec.substrate = substrate;
      spec.repeats = 1;
      spec.num_jobs = 3;
      spec.policies = {PolicyMode::kElastic};
      if (spec.axis_values.size() > 2) spec.axis_values.resize(2);
      const auto sweep = run_sweep(spec, 2);
      const std::size_t expected_points =
          spec.axis == SweepAxis::kNone ? 1u : spec.axis_values.size();
      ASSERT_EQ(sweep.points.size(), expected_points)
          << name << " on " << to_string(substrate);
      for (const auto& point : sweep.points) {
        const auto& m = point.metrics.at(PolicyMode::kElastic);
        EXPECT_GE(m.goodput, 0.0) << name;
        EXPECT_LE(m.goodput, 1.0) << name;
      }
    }
  }
}

}  // namespace
}  // namespace ehpc::scenario
