// The power-law graph scenarios: registry entries, the net_model /
// net_oversub / graph_vertices / graph_skew config keys, only-when-set
// describe() output, per-point workload re-calibration, and parallel
// determinism on both substrates (these run in the tsan/asan CI lanes like
// every scenario test — keep the specs small).

#include <gtest/gtest.h>

#include "expect_identical.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

namespace ehpc::scenario {
namespace {

using elastic::PolicyMode;

/// A small graph spec: a tiny graph and few jobs/repeats so TSan stays
/// fast, with the fat-tree network so the topology path is exercised.
ScenarioSpec small_graph_spec() {
  ScenarioSpec spec;
  spec.app = "graph";
  spec.graph_vertices = 256;
  spec.graph_skew = 0.9;
  spec.num_jobs = 6;
  spec.submission_gap_s = 30.0;
  spec.rescale_gap_s = 0.0;
  spec.repeats = 2;
  spec.policies = {PolicyMode::kElastic};
  return spec;
}

TEST(GraphScenarios, BothAreRegisteredAndValid) {
  auto& registry = ScenarioRegistry::instance();
  for (const char* name : {"graph_superstep", "graph_lb_ablation"}) {
    const ScenarioSpec* spec = registry.find(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_EQ(spec->app, "graph") << name;
    EXPECT_NO_THROW(spec->validate()) << name;
  }
  EXPECT_EQ(registry.require("graph_superstep").axis, SweepAxis::kGraphSkew);
  const ScenarioSpec& ablation = registry.require("graph_lb_ablation");
  EXPECT_EQ(ablation.axis, SweepAxis::kLbStrategy);
  EXPECT_EQ(ablation.net_model, "fattree");
  EXPECT_DOUBLE_EQ(ablation.net_oversub, 4.0);
}

TEST(GraphScenarios, SpecValidationRejectsBadGraphParameters) {
  ScenarioSpec spec = small_graph_spec();
  spec.net_model = "torus";
  EXPECT_THROW(spec.validate(), ConfigError);

  // A topology model without the graph app has nothing to price.
  spec = ScenarioSpec{};  // app = jacobi
  spec.net_model = "fattree";
  EXPECT_THROW(spec.validate(), ConfigError);

  // Oversubscription only means something on a topology model.
  spec = small_graph_spec();
  spec.net_oversub = 4.0;  // net_model still "flat"
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = small_graph_spec();
  spec.net_model = "fattree";
  spec.net_oversub = 0.5;
  EXPECT_THROW(spec.validate(), ConfigError);
  spec.net_oversub = 100.0;
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = small_graph_spec();
  spec.graph_vertices = 100;  // below the floor
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = small_graph_spec();
  spec.graph_skew = 2.0;
  EXPECT_THROW(spec.validate(), ConfigError);

  // Graph knobs on a non-graph app are a config mistake, not a no-op.
  spec = ScenarioSpec{};
  spec.graph_vertices = 512;
  EXPECT_THROW(spec.validate(), ConfigError);

  // Sweep axes bound their values and require the graph app.
  spec = small_graph_spec();
  spec.axis = SweepAxis::kGraphSkew;
  spec.axis_values = {0.0, 2.0};
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = ScenarioSpec{};
  spec.axis = SweepAxis::kGraphSkew;
  spec.axis_values = {0.0, 0.5};
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = small_graph_spec();
  spec.axis = SweepAxis::kNetOversub;
  spec.axis_values = {1.0, 8.0};  // net_model still "flat"
  EXPECT_THROW(spec.validate(), ConfigError);
  spec.net_model = "fattree";
  EXPECT_NO_THROW(spec.validate());
  spec.axis_values = {0.5};
  EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(GraphScenarios, ConfigKeysRoundTripThroughSpecFromConfig) {
  const char* argv[] = {"test",           "scenario=graph_lb_ablation",
                        "graph_vertices=512", "graph_skew=0.5",
                        "net_model=dragonfly", "net_oversub=8",
                        "lb_strategy=commrefine", "repeats=2"};
  const Config cfg = Config::from_args(8, argv, scenario_config_keys());
  const ScenarioSpec spec = resolve_scenario(cfg);
  EXPECT_EQ(spec.name, "graph_lb_ablation");
  EXPECT_EQ(spec.graph_vertices, 512);
  EXPECT_DOUBLE_EQ(spec.graph_skew, 0.5);
  EXPECT_EQ(spec.net_model, "dragonfly");
  EXPECT_DOUBLE_EQ(spec.net_oversub, 8.0);
  EXPECT_EQ(spec.lb_strategy, "commrefine");
  const std::string text = describe(spec);
  EXPECT_NE(text.find("graph_vertices=512"), std::string::npos);
  EXPECT_NE(text.find("graph_skew=0.5"), std::string::npos);
  EXPECT_NE(text.find("net_model=dragonfly"), std::string::npos);
  EXPECT_NE(text.find("net_oversub=8"), std::string::npos);
  EXPECT_NE(text.find("lb_strategy=commrefine"), std::string::npos);
}

TEST(GraphScenarios, DescribeRendersGraphKeysOnlyWhenSet) {
  // Pre-existing specs must describe() byte-identically to before the graph
  // app existed: no graph_* or net_* tokens on the default spec.
  const std::string plain = describe(ScenarioSpec{});
  EXPECT_EQ(plain.find("graph_"), std::string::npos);
  EXPECT_EQ(plain.find("net_"), std::string::npos);

  ScenarioSpec amr;
  amr.app = "amr";
  const std::string amr_text = describe(amr);
  EXPECT_EQ(amr_text.find("graph_"), std::string::npos);
  EXPECT_EQ(amr_text.find("net_"), std::string::npos);

  // Flat-network graph specs name the graph but not the network.
  const std::string graph_flat = describe(small_graph_spec());
  EXPECT_NE(graph_flat.find("graph_vertices=256"), std::string::npos);
  EXPECT_EQ(graph_flat.find("net_model"), std::string::npos);
}

TEST(GraphScenarios, SkewSweepRecalibratesPerPoint) {
  ScenarioSpec spec = small_graph_spec();
  spec.axis = SweepAxis::kGraphSkew;
  spec.axis_values = {0.0, 0.9};
  const auto sweep = run_sweep(spec, 1);
  ASSERT_EQ(sweep.points.size(), 2u);
  // Different skew -> different measured step-time curves -> different
  // completions. (Equality would mean the calibration ignored the axis.)
  EXPECT_NE(
      sweep.points[0].metrics.at(PolicyMode::kElastic).weighted_completion_s,
      sweep.points[1].metrics.at(PolicyMode::kElastic).weighted_completion_s);
}

TEST(GraphScenarios, SkewSweepIsBitIdenticalAcrossThreadCounts) {
  ScenarioSpec spec = small_graph_spec();
  spec.axis = SweepAxis::kGraphSkew;
  spec.axis_values = {0.0, 0.9};
  expect_identical(run_sweep(spec, 1), run_sweep(spec, 8));
}

TEST(GraphScenarios, OversubSweepIsBitIdenticalAcrossThreadCounts) {
  ScenarioSpec spec = small_graph_spec();
  spec.net_model = "fattree";
  spec.axis = SweepAxis::kNetOversub;
  spec.axis_values = {1.0, 8.0};
  expect_identical(run_sweep(spec, 1), run_sweep(spec, 8));
}

TEST(GraphScenarios, ClusterSubstrateIsBitIdenticalAcrossThreadCounts) {
  ScenarioSpec spec = small_graph_spec();
  spec.substrate = Substrate::kCluster;
  spec.num_jobs = 4;
  spec.net_model = "fattree";
  spec.net_oversub = 4.0;
  spec.axis = SweepAxis::kLbStrategy;
  spec.axis_values = {1.0, 3.0};  // greedy, commrefine
  expect_identical(run_sweep(spec, 1), run_sweep(spec, 8));
}

TEST(GraphScenarios, BothSubstratesRunTheRegisteredScenarios) {
  for (const char* name : {"graph_superstep", "graph_lb_ablation"}) {
    for (const Substrate substrate :
         {Substrate::kSchedSim, Substrate::kCluster}) {
      ScenarioSpec spec = ScenarioRegistry::instance().require(name);
      spec.substrate = substrate;
      spec.repeats = 1;
      spec.num_jobs = 3;
      spec.graph_vertices = 256;
      if (spec.axis_values.size() > 2) spec.axis_values.resize(2);
      const auto sweep = run_sweep(spec, 2);
      ASSERT_EQ(sweep.points.size(), spec.axis_values.size())
          << name << " on " << to_string(substrate);
    }
  }
}

}  // namespace
}  // namespace ehpc::scenario
