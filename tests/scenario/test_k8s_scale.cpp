// The k8s_scale registry scenario: a shrunken version of the scale shape
// (wide rigid jobs on a many-node cluster) must run end to end, honor the
// pods_per_job override, and stay bit-identical across sweep thread counts —
// this is the batched-watch-delivery path under the TSan lane.

#include <gtest/gtest.h>

#include "expect_identical.hpp"
#include "scenario/backend.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

namespace ehpc::scenario {
namespace {

/// The registry entry, shrunk to test size but keeping the scale shape:
/// every job forced rigid at pods_per_job width on a wide cluster.
ScenarioSpec small_scale_spec() {
  ScenarioSpec spec = ScenarioRegistry::instance().require("k8s_scale");
  spec.nodes = 50;
  spec.num_jobs = 8;
  spec.pods_per_job = 12;
  spec.submission_gap_s = 30.0;
  spec.repeats = 2;
  spec.validate();
  return spec;
}

TEST(K8sScaleScenario, RegistryEntryIsWellFormed) {
  const ScenarioSpec& spec = ScenarioRegistry::instance().require("k8s_scale");
  EXPECT_EQ(spec.substrate, Substrate::kCluster);
  EXPECT_GE(spec.nodes, 1000);
  EXPECT_GT(spec.pods_per_job, 0);
  EXPECT_FALSE(spec.calibrated);  // scale runs must not need minicharm
  spec.validate();
}

TEST(K8sScaleScenario, PodsPerJobForcesRigidWidths) {
  const ScenarioSpec spec = small_scale_spec();
  const auto mix = make_mix(spec, spec.seed);
  ASSERT_EQ(mix.size(), 8u);
  for (const auto& job : mix) {
    EXPECT_EQ(job.spec.min_replicas, 12);
    EXPECT_EQ(job.spec.max_replicas, 12);
  }
  // The override only pins widths: classes/priorities keep the generated
  // draws, so two jobs somewhere in the mix should still differ.
  bool priorities_differ = false;
  for (const auto& job : mix) {
    priorities_differ |= job.spec.priority != mix.front().spec.priority;
  }
  EXPECT_TRUE(priorities_differ);
}

TEST(K8sScaleScenario, RunsEndToEndAndFillsTheCluster) {
  ScenarioSpec spec = small_scale_spec();
  spec.repeats = 1;
  const auto workloads = workloads_for(spec);
  const auto policy = policy_for(spec, spec.policies.front());
  const auto mix = make_mix(spec, spec.seed);
  const auto result = make_backend(spec, policy, workloads)->run(mix);
  // 8 rigid jobs × 12 workers on 800 slots: everything runs to completion.
  EXPECT_EQ(result.jobs.size(), 8u);
  EXPECT_GT(result.metrics.utilization, 0.0);
  EXPECT_GT(result.metrics.total_time_s, 0.0);
}

TEST(K8sScaleScenario, BitIdenticalAcrossSweepThreadCounts) {
  const ScenarioSpec spec = small_scale_spec();
  const auto serial = compare_policies(spec, 1);
  const auto parallel = compare_policies(spec, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [mode, metrics] : serial) {
    expect_identical(metrics, parallel.at(mode), to_string(mode));
  }
}

}  // namespace
}  // namespace ehpc::scenario
