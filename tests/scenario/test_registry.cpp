#include "scenario/registry.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ehpc::scenario {
namespace {

TEST(ScenarioRegistry, BuiltInScenariosAreRegistered) {
  auto& registry = ScenarioRegistry::instance();
  for (const char* name :
       {"policy_compare", "fig7_submission_gap", "fig8_rescale_gap", "table1",
        "fig9_cluster", "quickstart", "burst_arrival"}) {
    const ScenarioSpec* spec = registry.find(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_EQ(spec->name, name);
    EXPECT_FALSE(spec->description.empty()) << name;
    EXPECT_NO_THROW(spec->validate()) << name;
  }
}

TEST(ScenarioRegistry, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& spec : ScenarioRegistry::instance().scenarios()) {
    EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
  }
}

TEST(ScenarioRegistry, DuplicateNameIsAHardError) {
  auto& registry = ScenarioRegistry::instance();
  const std::size_t before = registry.scenarios().size();
  ScenarioSpec dup;
  dup.name = "table1";  // collides with a built-in
  dup.description = "imposter";
  try {
    registry.add(dup);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& err) {
    EXPECT_NE(std::string(err.what()).find("table1"), std::string::npos);
    EXPECT_NE(std::string(err.what()).find("already registered"),
              std::string::npos);
  }
  // The rejected spec must not have been (partially) registered.
  EXPECT_EQ(registry.scenarios().size(), before);
  EXPECT_EQ(registry.require("table1").description.find("imposter"),
            std::string::npos);
}

TEST(ScenarioRegistry, SweepScenariosMatchTheFigures) {
  auto& registry = ScenarioRegistry::instance();
  const ScenarioSpec& fig7 = registry.require("fig7_submission_gap");
  EXPECT_EQ(fig7.axis, SweepAxis::kSubmissionGap);
  EXPECT_EQ(fig7.axis_values.size(), 8u);
  const ScenarioSpec& fig8 = registry.require("fig8_rescale_gap");
  EXPECT_EQ(fig8.axis, SweepAxis::kRescaleGap);
  EXPECT_EQ(fig8.axis_values.size(), 8u);
  const ScenarioSpec& fig9 = registry.require("fig9_cluster");
  EXPECT_EQ(fig9.substrate, Substrate::kCluster);
  EXPECT_EQ(fig9.repeats, 1);
}

TEST(ScenarioRegistry, FindReturnsNullForUnknown) {
  EXPECT_EQ(ScenarioRegistry::instance().find("nope"), nullptr);
}

TEST(ScenarioRegistry, RequireListsKnownNamesOnError) {
  try {
    ScenarioRegistry::instance().require("nope");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("nope"), std::string::npos);
    EXPECT_NE(what.find("fig7_submission_gap"), std::string::npos);
  }
}

TEST(ScenarioRegistry, ResolveScenarioOverlaysConfig) {
  const char* argv[] = {"test", "scenario=fig7_submission_gap", "repeats=3"};
  const Config cfg = Config::from_args(3, argv, scenario_config_keys());
  const ScenarioSpec spec = resolve_scenario(cfg);
  EXPECT_EQ(spec.name, "fig7_submission_gap");
  EXPECT_EQ(spec.repeats, 3);
  EXPECT_EQ(spec.axis, SweepAxis::kSubmissionGap);
}

TEST(ScenarioRegistry, ResolveScenarioUsesDefaultName) {
  const char* argv[] = {"test"};
  const Config cfg = Config::from_args(1, argv, scenario_config_keys());
  EXPECT_EQ(resolve_scenario(cfg, "quickstart").name, "quickstart");
  EXPECT_EQ(resolve_scenario(cfg).name, "custom");  // paper defaults
}

TEST(ScenarioRegistry, ListScenariosTextMentionsEveryScenarioAndKey) {
  const std::string text = list_scenarios_text();
  for (const auto& spec : ScenarioRegistry::instance().scenarios()) {
    EXPECT_NE(text.find(spec.name), std::string::npos) << spec.name;
    EXPECT_NE(text.find(spec.description), std::string::npos) << spec.name;
  }
  for (const auto& key : spec_config_keys()) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace ehpc::scenario
