#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace ehpc::scenario {
namespace {

using elastic::PolicyMode;

Config config_of(std::vector<const char*> args) {
  args.insert(args.begin(), "test");
  return Config::from_args(static_cast<int>(args.size()), args.data());
}

TEST(ScenarioSpec, DefaultsMatchThePaperSetup) {
  const ScenarioSpec spec;
  EXPECT_EQ(spec.substrate, Substrate::kSchedSim);
  EXPECT_EQ(spec.total_slots(), 64);  // 4 nodes x 16 vCPUs
  EXPECT_EQ(spec.num_jobs, 16);
  EXPECT_DOUBLE_EQ(spec.submission_gap_s, 90.0);
  EXPECT_DOUBLE_EQ(spec.rescale_gap_s, 180.0);
  EXPECT_EQ(spec.policies.size(), 4u);
  EXPECT_EQ(spec.repeats, 100);
  EXPECT_EQ(spec.seed, 2025u);
  EXPECT_NO_THROW(spec.validate());
}

TEST(ScenarioSpec, ConfigOverlaysEveryKey) {
  const auto cfg = config_of(
      {"substrate=cluster", "nodes=2", "cpus_per_node=8", "num_jobs=5",
       "submission_gap=10", "rescale_gap=20", "calibrated=false",
       "policies=elastic,moldable", "sweep_axis=submission_gap",
       "sweep_values=0,30,60", "repeats=7", "seed=11"});
  const ScenarioSpec spec = spec_from_config(cfg);
  EXPECT_EQ(spec.substrate, Substrate::kCluster);
  EXPECT_EQ(spec.total_slots(), 16);
  EXPECT_EQ(spec.num_jobs, 5);
  EXPECT_DOUBLE_EQ(spec.submission_gap_s, 10.0);
  EXPECT_DOUBLE_EQ(spec.rescale_gap_s, 20.0);
  EXPECT_FALSE(spec.calibrated);
  ASSERT_EQ(spec.policies.size(), 2u);
  EXPECT_EQ(spec.policies[0], PolicyMode::kElastic);
  EXPECT_EQ(spec.policies[1], PolicyMode::kMoldable);
  EXPECT_EQ(spec.axis, SweepAxis::kSubmissionGap);
  EXPECT_EQ(spec.axis_values, (std::vector<double>{0.0, 30.0, 60.0}));
  EXPECT_EQ(spec.repeats, 7);
  EXPECT_EQ(spec.seed, 11u);
}

TEST(ScenarioSpec, UnsetKeysKeepTheBaseSpec) {
  ScenarioSpec base;
  base.num_jobs = 42;
  base.substrate = Substrate::kCluster;
  const ScenarioSpec spec = spec_from_config(config_of({"seed=3"}), base);
  EXPECT_EQ(spec.num_jobs, 42);
  EXPECT_EQ(spec.substrate, Substrate::kCluster);
  EXPECT_EQ(spec.seed, 3u);
}

TEST(ScenarioSpec, PoliciesAllExpandsToAllFour) {
  const ScenarioSpec spec = spec_from_config(config_of({"policies=all"}));
  EXPECT_EQ(spec.policies.size(), 4u);
}

TEST(ScenarioSpec, BadValuesRaiseConfigError) {
  EXPECT_THROW(spec_from_config(config_of({"substrate=cloud"})), ConfigError);
  EXPECT_THROW(spec_from_config(config_of({"sweep_axis=priority"})),
               ConfigError);
  EXPECT_THROW(spec_from_config(config_of({"policies=greedy"})), ConfigError);
  EXPECT_THROW(spec_from_config(config_of({"policies="})), ConfigError);
  EXPECT_THROW(
      spec_from_config(config_of({"sweep_axis=rescale_gap",
                                  "sweep_values=1,x"})),
      ConfigError);
}

TEST(ScenarioSpec, ValidateRejectsInconsistentSpecs) {
  ScenarioSpec spec;
  spec.num_jobs = 0;
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = ScenarioSpec{};
  spec.axis = SweepAxis::kRescaleGap;  // no values
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = ScenarioSpec{};
  spec.axis_values = {1.0};  // values without an axis
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = ScenarioSpec{};
  spec.policies.clear();
  EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(ScenarioSpec, DescribeRoundTripsThroughConfigKeys) {
  ScenarioSpec spec;
  spec.axis = SweepAxis::kSubmissionGap;
  spec.axis_values = {0, 30};
  const std::string text = describe(spec);
  // Every token of the description must be a known config key.
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    ASSERT_NE(eq, std::string::npos) << token;
    const std::string key = token.substr(0, eq);
    const auto& keys = spec_config_keys();
    EXPECT_NE(std::find(keys.begin(), keys.end(), key), keys.end()) << key;
  }
}

}  // namespace
}  // namespace ehpc::scenario
