// Scenario-level ports of the former schedsim sweep tests, driving the same
// physics through the unified scenario API.

#include "scenario/sweep.hpp"

#include <gtest/gtest.h>

#include "scenario/registry.hpp"

namespace ehpc::scenario {
namespace {

using elastic::PolicyMode;

ScenarioSpec fast_spec() {
  ScenarioSpec spec;
  spec.repeats = 4;         // keep unit tests quick
  spec.calibrated = false;  // analytic curves: no minicharm runs
  spec.seed = 99;
  return spec;
}

TEST(Sweep, ComparePoliciesCoversAllFour) {
  const auto metrics = compare_policies(fast_spec());
  EXPECT_EQ(metrics.size(), 4u);
  for (const auto& [mode, m] : metrics) {
    EXPECT_GT(m.total_time_s, 0.0) << to_string(mode);
    EXPECT_GT(m.utilization, 0.0);
    EXPECT_LE(m.utilization, 1.0);
  }
}

TEST(Sweep, ComparePoliciesHonoursThePolicySubset) {
  ScenarioSpec spec = fast_spec();
  spec.policies = {PolicyMode::kElastic, PolicyMode::kMoldable};
  const auto metrics = compare_policies(spec);
  EXPECT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics.count(PolicyMode::kRigidMin), 0u);
}

TEST(Sweep, ElasticBeatsRigidOnUtilization) {
  // The paper's headline: elastic has the highest utilization and the
  // lowest total time of the four policies.
  ScenarioSpec spec = fast_spec();
  spec.repeats = 8;
  spec.submission_gap_s = 90.0;
  const auto metrics = compare_policies(spec);
  const auto& elastic = metrics.at(PolicyMode::kElastic);
  EXPECT_GE(elastic.utilization, metrics.at(PolicyMode::kRigidMin).utilization);
  EXPECT_GE(elastic.utilization, metrics.at(PolicyMode::kRigidMax).utilization);
  EXPECT_LE(elastic.total_time_s,
            metrics.at(PolicyMode::kRigidMin).total_time_s);
  EXPECT_LE(elastic.total_time_s,
            metrics.at(PolicyMode::kRigidMax).total_time_s);
}

TEST(Sweep, SubmissionGapSweepProducesOnePointPerValue) {
  ScenarioSpec spec = fast_spec();
  spec.axis = SweepAxis::kSubmissionGap;
  spec.axis_values = {0.0, 150.0, 300.0};
  const auto points = run_sweep(spec).points;
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].x, 0.0);
  EXPECT_DOUBLE_EQ(points[2].x, 300.0);
  for (const auto& pt : points) EXPECT_EQ(pt.metrics.size(), 4u);
}

TEST(Sweep, UtilizationDropsAsGapGrows) {
  ScenarioSpec spec = fast_spec();
  spec.repeats = 6;
  spec.axis = SweepAxis::kSubmissionGap;
  spec.axis_values = {0.0, 300.0};
  const auto points = run_sweep(spec).points;
  for (auto mode : {PolicyMode::kRigidMin, PolicyMode::kElastic}) {
    EXPECT_GT(points[0].metrics.at(mode).utilization,
              points[1].metrics.at(mode).utilization)
        << to_string(mode);
  }
}

TEST(Sweep, RescaleGapSweepElasticApproachesMoldable) {
  // Paper Fig. 8: as T_rescale_gap grows, the elastic scheduler converges to
  // the moldable scheduler (which never rescales).
  ScenarioSpec spec = fast_spec();
  spec.repeats = 6;
  spec.axis = SweepAxis::kRescaleGap;
  spec.axis_values = {0.0, 100000.0};
  const auto points = run_sweep(spec).points;
  const auto& far = points[1].metrics;
  EXPECT_NEAR(far.at(PolicyMode::kElastic).total_time_s,
              far.at(PolicyMode::kMoldable).total_time_s,
              far.at(PolicyMode::kMoldable).total_time_s * 0.02);
  // And at gap 0 the elastic scheduler must differ (it rescales).
  const auto& near_ = points[0].metrics;
  EXPECT_LT(near_.at(PolicyMode::kElastic).total_time_s,
            near_.at(PolicyMode::kMoldable).total_time_s * 1.001);
}

TEST(Sweep, RunSingleReturnsTraces) {
  const auto result = run_single(fast_spec(), PolicyMode::kElastic, 42);
  EXPECT_TRUE(result.trace.has("util"));
  EXPECT_EQ(result.jobs.size(), 16u);
}

TEST(Sweep, RunPoliciesKeepsFullResultsPerPolicy) {
  const ScenarioSpec spec = fast_spec();
  const auto mix = make_mix(spec, 7);
  const auto results = run_policies(spec, mix);
  EXPECT_EQ(results.size(), 4u);
  for (const auto& [mode, result] : results) {
    EXPECT_EQ(result.jobs.size(), mix.size()) << to_string(mode);
    EXPECT_TRUE(result.trace.has("util"));
  }
  // Rigid policies never rescale; this mix makes elastic do so.
  EXPECT_EQ(results.at(PolicyMode::kRigidMin).rescale_count, 0);
  EXPECT_EQ(results.at(PolicyMode::kRigidMax).rescale_count, 0);
}

TEST(Sweep, RunRepeatsAveragesAnExplicitPolicyConfig) {
  const ScenarioSpec spec = fast_spec();
  elastic::PolicyConfig policy;
  policy.mode = PolicyMode::kElastic;
  policy.rescale_gap_s = 180.0;
  const auto averaged = run_repeats(spec, policy);
  EXPECT_GT(averaged.total_time_s, 0.0);
  // Must agree with what compare_policies reports for the same mode, since
  // both average the same per-repeat runs.
  ScenarioSpec subset = spec;
  subset.policies = {PolicyMode::kElastic};
  EXPECT_DOUBLE_EQ(averaged.total_time_s,
                   compare_policies(subset).at(PolicyMode::kElastic).total_time_s);
}

TEST(Sweep, RegistryScenarioRunsEndToEnd) {
  ScenarioSpec spec =
      ScenarioRegistry::instance().require("burst_arrival");
  spec.repeats = 2;
  spec.calibrated = false;
  const auto metrics = compare_policies(spec);
  EXPECT_EQ(metrics.size(), 4u);
  EXPECT_GT(metrics.at(PolicyMode::kElastic).utilization, 0.0);
}

}  // namespace
}  // namespace ehpc::scenario
