// Determinism guarantees of the parallel sweep engine: fanning (point ×
// repeat) cells across a thread pool must produce results bit-identical to
// the serial order, for both substrates. These tests are the TSan lane's
// main target — keep every spec small.

#include <gtest/gtest.h>

#include "scenario/sweep.hpp"
#include "expect_identical.hpp"

namespace ehpc::scenario {
namespace {

using elastic::PolicyMode;
using elastic::RunMetrics;

ScenarioSpec fast_spec() {
  ScenarioSpec spec;
  spec.repeats = 5;
  spec.calibrated = false;
  spec.seed = 2025;
  return spec;
}

TEST(SweepParallel, SubmissionGapSweepIsBitIdenticalAcrossThreadCounts) {
  ScenarioSpec spec = fast_spec();
  spec.axis = SweepAxis::kSubmissionGap;
  spec.axis_values = {0.0, 90.0, 300.0};
  const auto serial = run_sweep(spec, 1);
  for (int threads : {2, 8}) {
    expect_identical(serial, run_sweep(spec, threads));
  }
}

TEST(SweepParallel, RescaleGapSweepIsBitIdenticalAcrossThreadCounts) {
  ScenarioSpec spec = fast_spec();
  spec.axis = SweepAxis::kRescaleGap;
  spec.axis_values = {0.0, 600.0};
  expect_identical(run_sweep(spec, 1), run_sweep(spec, 8));
}

TEST(SweepParallel, AutoThreadCountIsBitIdenticalToo) {
  ScenarioSpec spec = fast_spec();
  spec.axis = SweepAxis::kSubmissionGap;
  spec.axis_values = {0.0, 120.0};
  expect_identical(run_sweep(spec, 1), run_sweep(spec, /*threads=*/0));
}

TEST(SweepParallel, ClusterSubstrateSweepsDeterministically) {
  // The full operator machinery (cluster, controller, pod churn) per cell,
  // in parallel — each cell owns a private cluster instance.
  ScenarioSpec spec = fast_spec();
  spec.substrate = Substrate::kCluster;
  spec.num_jobs = 4;
  spec.repeats = 3;
  spec.policies = {PolicyMode::kElastic, PolicyMode::kRigidMin};
  const auto serial = compare_policies(spec, 1);
  const auto parallel = compare_policies(spec, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [mode, metrics] : serial) {
    expect_identical(metrics, parallel.at(mode), to_string(mode));
  }
}

TEST(SweepParallel, RunRepeatsIsBitIdenticalAcrossThreadCounts) {
  const ScenarioSpec spec = fast_spec();
  elastic::PolicyConfig policy;
  policy.mode = PolicyMode::kElastic;
  policy.rescale_gap_s = 0.0;  // rescale as often as possible
  expect_identical(run_repeats(spec, policy, 1), run_repeats(spec, policy, 8),
                   "run_repeats");
}

TEST(SweepParallel, MoreThreadsThanCellsIsFine) {
  ScenarioSpec spec = fast_spec();
  spec.repeats = 2;
  const auto serial = compare_policies(spec, 1);
  const auto parallel = compare_policies(spec, 64);
  for (const auto& [mode, metrics] : serial) {
    expect_identical(metrics, parallel.at(mode), to_string(mode));
  }
}

TEST(SweepParallel, WorkerExceptionsPropagateToTheCaller) {
  ScenarioSpec spec = fast_spec();
  spec.axis = SweepAxis::kSubmissionGap;
  spec.axis_values = {0.0, -1.0};  // negative gap: JobMixGenerator rejects it
  EXPECT_THROW(run_sweep(spec, 4), PreconditionError);
  EXPECT_THROW(run_sweep(spec, 1), PreconditionError);
}

}  // namespace
}  // namespace ehpc::scenario
