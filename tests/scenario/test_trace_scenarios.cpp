// The trace-campaign scenario family: the trace_replay registry entry,
// trace spec keys, streaming sweeps on both substrates, parallel
// determinism (threads=1 bit-identical to threads=8), cron
// placement-independence across substrates, and priority tie-breaking.
// These run in the tsan/asan CI lanes like every scenario test — keep the
// specs small.

#include <gtest/gtest.h>

#include <vector>

#include "expect_identical.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

namespace ehpc::scenario {
namespace {

using elastic::PolicyMode;
using elastic::RunMetrics;

/// A small streaming spec: a short synthetic trace with both prun-style
/// limits set, single policy so TSan stays fast.
ScenarioSpec small_trace_spec() {
  ScenarioSpec spec;
  spec.trace_jobs = 40;
  spec.submission_gap_s = 60.0;
  spec.calibrated = false;
  spec.queue_timeout_s = 1800.0;
  spec.task_timeout_s = 900.0;
  spec.repeats = 2;
  spec.policies = {PolicyMode::kElastic};
  return spec;
}

TEST(TraceScenarios, TraceReplayIsRegisteredAndStreams) {
  const ScenarioSpec& spec =
      ScenarioRegistry::instance().require("trace_replay");
  EXPECT_TRUE(spec.is_trace());
  EXPECT_GT(spec.trace_jobs, 0);
  EXPECT_GE(spec.queue_timeout_s, 0.0);
  EXPECT_GE(spec.task_timeout_s, 0.0);
  EXPECT_NO_THROW(spec.validate());
}

TEST(TraceScenarios, SpecKeysParseAndValidate) {
  Config cfg;
  cfg.set("scenario", "trace_replay");
  cfg.set("trace_jobs", "100");
  cfg.set("cron_period", "600");
  cfg.set("cron_phase", "30");
  cfg.set("cron_end", "1200");
  cfg.set("cron_class", "large");
  cfg.set("cron_priority", "5");
  cfg.set("queue_timeout", "900");
  cfg.set("task_timeout", "450");
  const ScenarioSpec spec = resolve_scenario(cfg);
  EXPECT_EQ(spec.trace_jobs, 100);
  EXPECT_EQ(spec.cron_period_s, 600.0);
  EXPECT_EQ(spec.cron_phase_s, 30.0);
  EXPECT_EQ(spec.cron_end_s, 1200.0);
  EXPECT_EQ(spec.cron_class, "large");
  EXPECT_EQ(spec.cron_priority, 5);
  EXPECT_EQ(spec.queue_timeout_s, 900.0);
  EXPECT_EQ(spec.task_timeout_s, 450.0);
  EXPECT_TRUE(spec.is_trace());
}

TEST(TraceScenarios, ValidationRejectsBadTraceParameters) {
  ScenarioSpec spec = small_trace_spec();
  spec.trace_jobs = -1;
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = small_trace_spec();
  spec.cron_period_s = 100.0;
  spec.cron_end_s = -1.0;
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = small_trace_spec();
  spec.cron_period_s = 100.0;
  spec.cron_end_s = 500.0;
  spec.cron_class = "gigantic";
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = small_trace_spec();
  spec.cron_period_s = 100.0;
  spec.cron_end_s = 500.0;
  spec.cron_priority = 0;
  EXPECT_THROW(spec.validate(), ConfigError);
}

// The core determinism guarantee extended to streaming cells: a trace sweep
// fanned out over 8 threads is bit-identical to the serial run, on both
// substrates.
TEST(TraceScenarios, ParallelSweepBitIdenticalOnSchedSim) {
  const ScenarioSpec spec = small_trace_spec();
  expect_identical(run_sweep(spec, 1), run_sweep(spec, 8));
}

TEST(TraceScenarios, ParallelSweepBitIdenticalOnCluster) {
  ScenarioSpec spec = small_trace_spec();
  spec.substrate = Substrate::kCluster;
  spec.trace_jobs = 12;
  spec.repeats = 1;
  expect_identical(run_sweep(spec, 1), run_sweep(spec, 8));
}

// Cron occurrences are defined by (period, phase, end) alone, so the same
// cron schedule must yield the same number of submissions on both
// substrates, and the run must be deterministic per substrate.
TEST(TraceScenarios, CronIsDeterministicAndPlacementIndependent) {
  ScenarioSpec spec;
  spec.cron_period_s = 300.0;
  spec.cron_phase_s = 0.0;
  spec.cron_end_s = 1500.0;  // 6 occurrences
  spec.cron_class = "small";
  spec.calibrated = false;
  spec.policies = {PolicyMode::kElastic};
  spec.repeats = 1;

  const auto sched_a = run_single(spec, PolicyMode::kElastic, spec.seed);
  const auto sched_b = run_single(spec, PolicyMode::kElastic, spec.seed);
  EXPECT_EQ(sched_a.stream.jobs_submitted, 6);
  expect_identical(sched_a.metrics, sched_b.metrics, "schedsim cron");

  ScenarioSpec cluster = spec;
  cluster.substrate = Substrate::kCluster;
  const auto clus = run_single(cluster, PolicyMode::kElastic, cluster.seed);
  EXPECT_EQ(clus.stream.jobs_submitted, 6);
  // The cluster substrate pays operator/pod overheads, so metrics differ —
  // but every cron job must be accounted for identically.
  EXPECT_EQ(clus.metrics.jobs_abandoned, sched_a.metrics.jobs_abandoned);
}

// Composite merge: synthetic + cron on one stream, replayed through the
// sweep engine on both substrates without double-counting.
TEST(TraceScenarios, CompositeSyntheticPlusCronRunsOnBothSubstrates) {
  ScenarioSpec spec = small_trace_spec();
  spec.trace_jobs = 10;
  spec.cron_period_s = 120.0;
  spec.cron_phase_s = 60.0;
  spec.cron_end_s = 540.0;  // 5 occurrences
  spec.repeats = 1;
  for (const Substrate substrate :
       {Substrate::kSchedSim, Substrate::kCluster}) {
    spec.substrate = substrate;
    const auto result = run_single(spec, PolicyMode::kElastic, spec.seed);
    EXPECT_EQ(result.stream.jobs_submitted, 15) << to_string(substrate);
    EXPECT_TRUE(result.jobs.empty()) << to_string(substrate);
  }
}

// Equal-priority jobs must be admitted in job-id order (the policy engine's
// deterministic tie-break), so a trace of identical jobs starts in
// submission order.
TEST(TraceScenarios, PriorityTiesBreakByJobId) {
  ScenarioSpec spec;
  spec.cron_period_s = 1.0;
  spec.cron_phase_s = 0.0;
  spec.cron_end_s = 7.0;  // 8 near-simultaneous identical jobs
  spec.cron_class = "small";
  spec.cron_priority = 3;
  spec.calibrated = false;
  spec.policies = {PolicyMode::kRigidMin};
  spec.repeats = 1;
  const auto result = run_single(spec, PolicyMode::kRigidMin, spec.seed);
  EXPECT_EQ(result.stream.jobs_submitted, 8);
  // All 8 small jobs (min width 2) fit in 64 slots: none abandon, none wait
  // out of order. Streaming retires records, so assert via the counters.
  EXPECT_EQ(result.metrics.jobs_abandoned, 0.0);
  EXPECT_EQ(result.metrics.jobs_failed, 0.0);
}

}  // namespace
}  // namespace ehpc::scenario
