// Regression tests for the fault/recovery paths of the shared ExecHarness:
// the crash/checkpoint virtual-time tie contract (a checkpoint becomes the
// rollback target only once its write completes), the straggler slowdown
// lifecycle across crashes/evictions/budget kills, and the deterministic
// victim tie-break for same-timestamp events.

#include <gtest/gtest.h>

#include "elastic/policy.hpp"
#include "schedsim/calibrate.hpp"
#include "schedsim/exec.hpp"
#include "schedsim/simulator.hpp"
#include "sim/simulation.hpp"

namespace ehpc::schedsim {
namespace {

using elastic::JobClass;
using elastic::JobId;
using elastic::PolicyMode;

SubmittedJob job(int id, JobClass cls, int priority, double submit) {
  SubmittedJob j;
  j.spec = elastic::spec_for_class(cls, id, priority);
  j.job_class = cls;
  j.submit_time = submit;
  return j;
}

elastic::PolicyConfig rigid_min() {
  elastic::PolicyConfig cfg;
  cfg.mode = PolicyMode::kRigidMin;
  return cfg;
}

/// The checkpoint write pause of one medium job at its rigid-min width,
/// under `plan` (the window during which the snapshot is not yet durable).
double write_pause(const FaultPlan& plan) {
  const auto workloads = analytic_workloads();
  const auto& w = workloads.at(JobClass::kMedium);
  const int replicas =
      elastic::spec_for_class(JobClass::kMedium, 0, 3).min_replicas;
  return w.rescale.checkpoint_s(replicas) * plan.disk_factor;
}

SimResult run_single_medium(const FaultPlan& plan) {
  SchedSimulator sim(64, rigid_min(), analytic_workloads());
  sim.set_fault_plan(plan);
  return sim.run({job(0, JobClass::kMedium, 3, 0.0)});
}

// ---- crash/checkpoint tie contract (the torn-checkpoint bug) ----

TEST(CheckpointTie, CrashInsideWriteWindowRollsBackToPreviousCheckpoint) {
  // The tick at t=100 snapshots progress and starts writing; the crash lands
  // strictly inside the write window, so the snapshot died with the process
  // and the job must roll back to its previous durable checkpoint (here: the
  // start). The harness used to stage the snapshot as the rollback target at
  // tick time, losing zero work for a crash mid-write.
  FaultPlan plan;
  plan.checkpoint_period_s = 100.0;
  const double pause = write_pause(plan);
  ASSERT_GT(pause, 0.0);
  plan.crash_times = {100.0 + pause / 2.0};
  const SimResult result = run_single_medium(plan);
  ASSERT_EQ(result.jobs.size(), 1u);
  // All 100 s of pre-tick progress are lost, not zero.
  EXPECT_NEAR(result.jobs[0].lost_work_s, 100.0, 1e-6);
}

TEST(CheckpointTie, CrashAtExactWriteCompletionUsesTheFreshCheckpoint) {
  // A crash at exactly the instant the checkpoint write completes rolls back
  // to the checkpoint completing *at* that instant, not the previous one:
  // the completion timestamp is inclusive.
  FaultPlan plan;
  plan.checkpoint_period_s = 100.0;
  plan.crash_times = {100.0 + write_pause(plan)};
  const SimResult result = run_single_medium(plan);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_NEAR(result.jobs[0].lost_work_s, 0.0, 1e-9);
}

TEST(CheckpointTie, CrashTyingTheTickStartKeepsThePreviousCheckpoint) {
  // Crash and checkpoint tick at the same virtual timestamp: events at equal
  // times pop in schedule order and fault events are scheduled before the
  // checkpoint chain, so the crash fires first and the tick never begins for
  // the now-paused victim. The rollback target is the previous completed
  // checkpoint (t=100); work since it is lost.
  FaultPlan plan;
  plan.checkpoint_period_s = 100.0;
  plan.crash_times = {200.0};
  const double pause = write_pause(plan);
  const SimResult result = run_single_medium(plan);
  ASSERT_EQ(result.jobs.size(), 1u);
  // Progress between the end of the t=100 write and the crash at t=200.
  EXPECT_NEAR(result.jobs[0].lost_work_s, 100.0 - pause, 1e-6);
}

// ---- straggler slowdown lifecycle ----

TEST(StragglerLifecycle, CrashReplacesTheStragglerProcess) {
  // A crash restarts every process of the job, so the straggler PE dies with
  // it: after recovery the job must run at full speed, making its completion
  // time identical to a crash-only run. The slowdown used to silently
  // survive the crash and drag the restarted job.
  auto completion_with = [](bool straggler) {
    FaultPlan plan;
    plan.crash_times = {60.0};
    if (straggler) {
      plan.straggler_at_s = 50.0;
      plan.straggler_factor = 3.0;
    }
    const SimResult result = run_single_medium(plan);
    return result.jobs.at(0).complete_time;
  };
  EXPECT_DOUBLE_EQ(completion_with(true), completion_with(false));
}

TEST(StragglerLifecycle, EvictionReplacesTheStragglerProcess) {
  auto completion_with = [](bool straggler) {
    FaultPlan plan;
    plan.evict_times = {60.0};
    if (straggler) {
      plan.straggler_at_s = 50.0;
      plan.straggler_factor = 3.0;
    }
    const SimResult result = run_single_medium(plan);
    return result.jobs.at(0).complete_time;
  };
  EXPECT_DOUBLE_EQ(completion_with(true), completion_with(false));
}

/// Minimal instant-action harness (the SimHarness hooks, trimmed) that
/// exposes per-job exec state so lifecycle tests can inspect fault fields
/// the public result does not surface.
class InspectHarness final : public ExecHarness {
 public:
  using ExecHarness::ExecHarness;
  const JobExec& exec_of(JobId id) { return exec(id); }

 private:
  void start_job(JobId id, int replicas) override {
    JobExec& e = exec(id);
    e.started = true;
    e.replicas = replicas;
    e.record.start_time = sim().now();
    e.accrue_from = sim().now();
    schedule_completion(id);
    record_replicas(id, replicas);
  }
  // Rigid-min single-job runs never rescale.
  void shrink_job(JobId, int) override { FAIL() << "unexpected shrink"; }
  void expand_job(JobId, int) override { FAIL() << "unexpected expand"; }
};

TEST(StragglerLifecycle, BudgetKillClearsTheStragglerState) {
  // The max_failed_nodes budget kills the straggling job outright; the
  // slowdown must not outlive the job's processes (it used to persist on the
  // dead exec, double-charging any later accounting against it).
  FaultPlan plan;
  plan.straggler_at_s = 50.0;
  plan.straggler_factor = 3.0;
  plan.crash_times = {60.0};
  plan.max_failed_nodes = 0;

  sim::Simulation sim;
  const auto workloads = analytic_workloads();
  InspectHarness harness(sim, 64, rigid_min(), workloads);
  harness.set_fault_plan(plan);
  const SimResult result = harness.run({job(0, JobClass::kMedium, 3, 0.0)});
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_TRUE(result.jobs[0].failed);
  EXPECT_DOUBLE_EQ(harness.exec_of(0).slowdown, 1.0);
}

TEST(StragglerLifecycle, CrashClearsTheSlowdownOnTheExec) {
  // Direct state check of the crash path (completion-time equality above is
  // the behavioural symptom; this pins the field itself).
  FaultPlan plan;
  plan.straggler_at_s = 50.0;
  plan.straggler_factor = 3.0;
  plan.crash_times = {60.0};

  sim::Simulation sim;
  const auto workloads = analytic_workloads();
  InspectHarness harness(sim, 64, rigid_min(), workloads);
  harness.set_fault_plan(plan);
  const SimResult result = harness.run({job(0, JobClass::kMedium, 3, 0.0)});
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_FALSE(result.jobs[0].failed);
  EXPECT_DOUBLE_EQ(harness.exec_of(0).slowdown, 1.0);
}

// ---- same-timestamp victim determinism ----

TEST(VictimTieBreak, SameTimestampCrashesReevaluateTheVictimInPlanOrder) {
  // Two crashes at the identical virtual time are applied in plan order and
  // each re-picks its victim (widest running job, ties by lowest id). Both
  // hit the wide job here — its width is unchanged by the rollback — so with
  // a budget of 1 the second same-instant crash kills it while the narrow
  // job survives untouched.
  FaultPlan plan;
  plan.crash_times = {60.0, 60.0};
  plan.max_failed_nodes = 1;
  SchedSimulator sim(64, rigid_min(), analytic_workloads());
  sim.set_fault_plan(plan);
  const SimResult result = sim.run({job(0, JobClass::kXLarge, 3, 0.0),
                                    job(1, JobClass::kSmall, 3, 0.0)});
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_TRUE(result.jobs[0].failed);
  EXPECT_FALSE(result.jobs[1].failed);
  EXPECT_EQ(result.metrics.jobs_failed, 1.0);
  EXPECT_EQ(result.metrics.failures, 2.0);
}

}  // namespace
}  // namespace ehpc::schedsim
