#include "schedsim/jobmix.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ehpc::schedsim {
namespace {

TEST(JobMixGenerator, GeneratesRequestedCount) {
  JobMixGenerator gen(1);
  auto mix = gen.generate(16, 90.0);
  EXPECT_EQ(mix.size(), 16u);
}

TEST(JobMixGenerator, SubmitTimesAreSpacedByGap) {
  JobMixGenerator gen(1);
  auto mix = gen.generate(5, 90.0);
  for (std::size_t i = 0; i < mix.size(); ++i) {
    EXPECT_DOUBLE_EQ(mix[i].submit_time, 90.0 * static_cast<double>(i));
  }
}

TEST(JobMixGenerator, DeterministicForSameSeed) {
  JobMixGenerator a(7), b(7);
  auto ma = a.generate(16, 50.0);
  auto mb = b.generate(16, 50.0);
  for (std::size_t i = 0; i < ma.size(); ++i) {
    EXPECT_EQ(ma[i].job_class, mb[i].job_class);
    EXPECT_EQ(ma[i].spec.priority, mb[i].spec.priority);
  }
}

TEST(JobMixGenerator, PrioritiesWithinPaperRange) {
  JobMixGenerator gen(3);
  for (const auto& job : gen.generate(200, 0.0)) {
    EXPECT_GE(job.spec.priority, 1);
    EXPECT_LE(job.spec.priority, 5);
  }
}

TEST(JobMixGenerator, AllClassesAppearInLargeSamples) {
  JobMixGenerator gen(5);
  std::set<elastic::JobClass> seen;
  for (const auto& job : gen.generate(100, 0.0)) seen.insert(job.job_class);
  EXPECT_EQ(seen.size(), 4u);
}

TEST(JobMixGenerator, SpecsMatchClassBounds) {
  JobMixGenerator gen(9);
  for (const auto& job : gen.generate(50, 10.0)) {
    const auto w = elastic::make_workload(job.job_class);
    EXPECT_EQ(job.spec.min_replicas, w.min_replicas);
    EXPECT_EQ(job.spec.max_replicas, w.max_replicas);
  }
}

TEST(JobMixGenerator, UniqueIds) {
  JobMixGenerator gen(11);
  std::set<int> ids;
  for (const auto& job : gen.generate(30, 1.0)) ids.insert(job.spec.id);
  EXPECT_EQ(ids.size(), 30u);
}

TEST(JobMixGenerator, RejectsInvalidArguments) {
  JobMixGenerator gen(1);
  EXPECT_THROW(gen.generate(0, 10.0), PreconditionError);
  EXPECT_THROW(gen.generate(5, -1.0), PreconditionError);
}

}  // namespace
}  // namespace ehpc::schedsim
