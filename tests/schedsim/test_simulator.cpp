#include "schedsim/simulator.hpp"

#include <gtest/gtest.h>

#include "schedsim/calibrate.hpp"

namespace ehpc::schedsim {
namespace {

using elastic::JobClass;
using elastic::PolicyConfig;
using elastic::PolicyMode;

SubmittedJob job(int id, JobClass cls, int priority, double submit) {
  SubmittedJob j;
  j.spec = elastic::spec_for_class(cls, id, priority);
  j.job_class = cls;
  j.submit_time = submit;
  return j;
}

PolicyConfig cfg(PolicyMode mode, double gap = 180.0) {
  PolicyConfig c;
  c.mode = mode;
  c.rescale_gap_s = gap;
  return c;
}

TEST(SchedSimulator, SingleJobRunsAtMaxAndMatchesModel) {
  auto workloads = analytic_workloads();
  SchedSimulator sim(64, cfg(PolicyMode::kElastic), workloads);
  auto result = sim.run({job(0, JobClass::kMedium, 3, 0.0)});
  ASSERT_EQ(result.jobs.size(), 1u);
  const auto& w = workloads.at(JobClass::kMedium);
  EXPECT_DOUBLE_EQ(result.jobs[0].start_time, 0.0);
  EXPECT_NEAR(result.jobs[0].complete_time, w.runtime_at(w.max_replicas), 1e-6);
  EXPECT_EQ(result.rescale_count, 0);
}

TEST(SchedSimulator, MinPolicyRunsSlowerThanMaxForOneJob) {
  auto workloads = analytic_workloads();
  const auto mix = std::vector<SubmittedJob>{job(0, JobClass::kLarge, 3, 0.0)};
  SchedSimulator min_sim(64, cfg(PolicyMode::kRigidMin), workloads);
  SchedSimulator max_sim(64, cfg(PolicyMode::kRigidMax), workloads);
  EXPECT_GT(min_sim.run(mix).metrics.total_time_s,
            max_sim.run(mix).metrics.total_time_s);
}

TEST(SchedSimulator, ElasticShrinksForHighPriorityArrival) {
  auto workloads = analytic_workloads();
  SchedSimulator sim(64, cfg(PolicyMode::kElastic, 0.0), workloads);
  // Two large jobs fill the cluster (the later one is the eligible victim —
  // Fig. 2 protects runningJobs[0]); a high-priority xlarge arrival forces a
  // shrink.
  auto result = sim.run({job(0, JobClass::kLarge, 1, 0.0),
                         job(1, JobClass::kLarge, 1, 1.0),
                         job(2, JobClass::kXLarge, 5, 10.0)});
  EXPECT_GE(result.rescale_count, 1);
  // The high-priority job started long before the victims finished.
  EXPECT_LT(result.jobs[2].start_time, result.jobs[0].complete_time);
}

TEST(SchedSimulator, MoldableNeverRescales) {
  auto workloads = analytic_workloads();
  SchedSimulator sim(64, cfg(PolicyMode::kMoldable, 0.0), workloads);
  JobMixGenerator gen(3);
  auto result = sim.run(gen.generate(12, 60.0));
  EXPECT_EQ(result.rescale_count, 0);
}

TEST(SchedSimulator, AllJobsCompleteUnderEveryPolicy) {
  auto workloads = analytic_workloads();
  JobMixGenerator gen(17);
  const auto mix = gen.generate(16, 90.0);
  for (auto mode : {PolicyMode::kRigidMin, PolicyMode::kRigidMax,
                    PolicyMode::kMoldable, PolicyMode::kElastic}) {
    SchedSimulator sim(64, cfg(mode), workloads);
    auto result = sim.run(mix);
    EXPECT_EQ(result.jobs.size(), mix.size()) << to_string(mode);
    for (const auto& rec : result.jobs) {
      EXPECT_GE(rec.start_time, rec.submit_time);
      EXPECT_GT(rec.complete_time, rec.start_time);
    }
  }
}

TEST(SchedSimulator, DeterministicRuns) {
  auto workloads = analytic_workloads();
  JobMixGenerator gen(5);
  const auto mix = gen.generate(10, 45.0);
  SchedSimulator a(64, cfg(PolicyMode::kElastic), workloads);
  SchedSimulator b(64, cfg(PolicyMode::kElastic), workloads);
  const auto ra = a.run(mix);
  const auto rb = b.run(mix);
  EXPECT_DOUBLE_EQ(ra.metrics.total_time_s, rb.metrics.total_time_s);
  EXPECT_DOUBLE_EQ(ra.metrics.utilization, rb.metrics.utilization);
  EXPECT_EQ(ra.rescale_count, rb.rescale_count);
}

TEST(SchedSimulator, UtilizationWithinBounds) {
  auto workloads = analytic_workloads();
  JobMixGenerator gen(23);
  SchedSimulator sim(64, cfg(PolicyMode::kElastic), workloads);
  auto result = sim.run(gen.generate(16, 90.0));
  EXPECT_GT(result.metrics.utilization, 0.0);
  EXPECT_LE(result.metrics.utilization, 1.0);
}

TEST(SchedSimulator, RescaleOverheadExtendsRuntime) {
  // A shrunk job must take strictly longer than running undisturbed at its
  // best (max-replica) configuration.
  auto workloads = analytic_workloads();
  SchedSimulator sim(64, cfg(PolicyMode::kElastic, 0.0), workloads);
  auto result = sim.run({job(0, JobClass::kLarge, 1, 0.0),
                         job(1, JobClass::kLarge, 1, 1.0),
                         job(2, JobClass::kXLarge, 5, 10.0)});
  EXPECT_GE(result.rescale_count, 1);
  const auto& w = workloads.at(JobClass::kLarge);
  // Job 1 is the shrink victim: its span exceeds the undisturbed runtime at
  // its starting allocation (32 = max for large).
  EXPECT_GT(result.jobs[1].complete_time - result.jobs[1].start_time,
            w.runtime_at(w.max_replicas) * 1.001);
}

TEST(SchedSimulator, TraceRecordsUtilAndReplicas) {
  auto workloads = analytic_workloads();
  SchedSimulator sim(64, cfg(PolicyMode::kElastic), workloads);
  auto result = sim.run({job(0, JobClass::kSmall, 3, 0.0)});
  EXPECT_TRUE(result.trace.has("util"));
  EXPECT_TRUE(result.trace.has("job.0.replicas"));
  // Replicas go up at start and back to zero at completion.
  const auto& series = result.trace.series("job.0.replicas");
  ASSERT_GE(series.size(), 2u);
  EXPECT_GT(series.front().second, 0.0);
  EXPECT_DOUBLE_EQ(series.back().second, 0.0);
}

TEST(SchedSimulator, CalibratedWorkloadsAlsoRun) {
  auto workloads = calibrated_workloads();
  JobMixGenerator gen(2);
  SchedSimulator sim(64, cfg(PolicyMode::kElastic), workloads);
  auto result = sim.run(gen.generate(8, 90.0));
  EXPECT_EQ(result.jobs.size(), 8u);
  EXPECT_GT(result.metrics.utilization, 0.0);
}

}  // namespace
}  // namespace ehpc::schedsim
