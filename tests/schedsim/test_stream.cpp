// Streaming-replay semantics of the shared harness: run_stream equivalence
// with the batch path, queue/task timeouts, per-job failure budgets, their
// interactions, and the bounded-memory invariant (peak live JobExec records
// track concurrency, not trace length).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "schedsim/calibrate.hpp"
#include "schedsim/simulator.hpp"
#include "trace/sources.hpp"

namespace ehpc::schedsim {
namespace {

using elastic::JobClass;
using elastic::JobRecord;
using elastic::PolicyConfig;
using elastic::PolicyMode;

SubmittedJob job(int id, JobClass cls, int priority, double submit) {
  SubmittedJob j;
  j.spec = elastic::spec_for_class(cls, id, priority);
  j.job_class = cls;
  j.submit_time = submit;
  return j;
}

PolicyConfig cfg(PolicyMode mode, double gap = 180.0) {
  PolicyConfig c;
  c.mode = mode;
  c.rescale_gap_s = gap;
  return c;
}

/// Replays a pre-built mix as a TraceSource, so run() and run_stream() can
/// be compared on identical submissions.
class VectorTraceSource final : public trace::TraceSource {
 public:
  explicit VectorTraceSource(std::vector<SubmittedJob> jobs)
      : jobs_(std::move(jobs)) {}

  std::optional<SubmittedJob> next() override {
    if (index_ >= jobs_.size()) return std::nullopt;
    return jobs_[index_++];
  }

 private:
  std::vector<SubmittedJob> jobs_;
  std::size_t index_ = 0;
};

TEST(RunStream, MatchesBatchRunOnEveryPolicy) {
  const auto workloads = analytic_workloads();
  JobMixGenerator gen(7);
  const auto mix = gen.generate(24, 45.0);
  for (const auto mode : {PolicyMode::kRigidMin, PolicyMode::kRigidMax,
                          PolicyMode::kMoldable, PolicyMode::kElastic}) {
    SchedSimulator batch(64, cfg(mode), workloads);
    const auto batch_result = batch.run(mix);

    VectorTraceSource source(mix);
    SchedSimulator stream(64, cfg(mode), workloads);
    const auto stream_result = stream.run_stream(source);

    const auto& a = batch_result.metrics;
    const auto& b = stream_result.metrics;
    EXPECT_EQ(a.total_time_s, b.total_time_s) << to_string(mode);
    // Batch folds job records into the collector in id order at the end of
    // the run; streaming folds in completion order as jobs retire. The sums
    // agree only to rounding, so order-dependent aggregates use a relative
    // tolerance; counts stay exact.
    EXPECT_NEAR(a.weighted_response_s, b.weighted_response_s,
                1e-9 * a.weighted_response_s)
        << to_string(mode);
    EXPECT_NEAR(a.weighted_completion_s, b.weighted_completion_s,
                1e-9 * a.weighted_completion_s)
        << to_string(mode);
    EXPECT_NEAR(a.utilization, b.utilization, 1e-9) << to_string(mode);
    EXPECT_EQ(a.jobs_failed, b.jobs_failed) << to_string(mode);
    EXPECT_EQ(a.jobs_abandoned, b.jobs_abandoned) << to_string(mode);
    EXPECT_EQ(a.jobs_timed_out, b.jobs_timed_out) << to_string(mode);
    EXPECT_NEAR(a.goodput, b.goodput, 1e-12) << to_string(mode);
    EXPECT_EQ(batch_result.rescale_count, stream_result.rescale_count)
        << to_string(mode);

    // Streaming keeps summaries only.
    EXPECT_TRUE(stream_result.jobs.empty());
    EXPECT_EQ(stream_result.stream.jobs_submitted,
              static_cast<long>(mix.size()));
    EXPECT_GT(stream_result.stream.peak_live_jobs, 0);
  }
}

TEST(RunStream, DeterministicAcrossRuns) {
  const auto workloads = analytic_workloads();
  trace::SyntheticTraceConfig tcfg;
  tcfg.num_jobs = 300;
  tcfg.submission_gap_s = 30.0;
  tcfg.defaults.queue_timeout_s = 1800.0;
  tcfg.defaults.task_timeout_s = 900.0;

  std::map<std::string, double> first;
  for (int round = 0; round < 2; ++round) {
    trace::SyntheticTraceSource source(tcfg);
    SchedSimulator sim(64, cfg(PolicyMode::kElastic), workloads);
    const auto result = sim.run_stream(source);
    if (round == 0) {
      first["total"] = result.metrics.total_time_s;
      first["util"] = result.metrics.utilization;
      first["resp"] = result.metrics.weighted_response_s;
      first["abandoned"] = result.metrics.jobs_abandoned;
      first["timed_out"] = result.metrics.jobs_timed_out;
      first["p99"] = result.stream.response_p99;
    } else {
      EXPECT_EQ(first["total"], result.metrics.total_time_s);
      EXPECT_EQ(first["util"], result.metrics.utilization);
      EXPECT_EQ(first["resp"], result.metrics.weighted_response_s);
      EXPECT_EQ(first["abandoned"], result.metrics.jobs_abandoned);
      EXPECT_EQ(first["timed_out"], result.metrics.jobs_timed_out);
      EXPECT_EQ(first["p99"], result.stream.response_p99);
    }
  }
}

TEST(RunStream, RetireObserverSeesEveryJobExactlyOnce) {
  const auto workloads = analytic_workloads();
  JobMixGenerator gen(11);
  const auto mix = gen.generate(16, 60.0);
  VectorTraceSource source(mix);
  SchedSimulator sim(64, cfg(PolicyMode::kElastic), workloads);
  std::vector<JobRecord> retired;
  const auto result = sim.run_stream(
      source, [&](const JobRecord& rec) { retired.push_back(rec); });
  ASSERT_EQ(retired.size(), mix.size());
  std::vector<elastic::JobId> ids;
  for (const auto& rec : retired) {
    ids.push_back(rec.id);
    EXPECT_GE(rec.complete_time, rec.submit_time);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(result.stream.jobs_submitted, static_cast<long>(mix.size()));
}

TEST(RunStream, QueueTimeoutAbandonsUnstartedJob) {
  const auto workloads = analytic_workloads();
  // 16 slots, rigid-max mediums (width 16): job 1 cannot start until job 0
  // finishes, and its queue timeout expires first.
  const auto& w = workloads.at(JobClass::kMedium);
  const double runtime = w.runtime_at(16);
  auto blocked = job(1, JobClass::kMedium, 3, 0.0);
  blocked.queue_timeout_s = runtime / 2;

  VectorTraceSource source({job(0, JobClass::kMedium, 3, 0.0), blocked});
  SchedSimulator sim(16, cfg(PolicyMode::kRigidMax), workloads);
  std::vector<JobRecord> retired;
  const auto result = sim.run_stream(
      source, [&](const JobRecord& rec) { retired.push_back(rec); });

  EXPECT_EQ(result.metrics.jobs_abandoned, 1.0);
  EXPECT_EQ(result.metrics.jobs_timed_out, 0.0);
  ASSERT_EQ(retired.size(), 2u);
  const auto& abandoned =
      retired[0].id == 1 ? retired[0] : retired[1];
  EXPECT_TRUE(abandoned.abandoned);
  EXPECT_FALSE(abandoned.timed_out);
  // Abandoned unstarted: both timestamps pin to the abandon time, and the
  // job contributed no useful work.
  EXPECT_DOUBLE_EQ(abandoned.start_time, abandoned.complete_time);
  EXPECT_DOUBLE_EQ(abandoned.complete_time,
                   abandoned.submit_time + runtime / 2);
  EXPECT_EQ(abandoned.goodput(), 0.0);
}

TEST(RunStream, QueueTimeoutDoesNotFireOnceStarted) {
  const auto workloads = analytic_workloads();
  auto only = job(0, JobClass::kMedium, 3, 0.0);
  only.queue_timeout_s = 1.0;  // starts immediately, so this never fires
  VectorTraceSource source({only});
  SchedSimulator sim(64, cfg(PolicyMode::kElastic), workloads);
  const auto result = sim.run_stream(source);
  EXPECT_EQ(result.metrics.jobs_abandoned, 0.0);
  EXPECT_EQ(result.stream.jobs_submitted, 1);
}

TEST(RunStream, TaskTimeoutKillsAndChargesRunningJob) {
  const auto workloads = analytic_workloads();
  const auto& w = workloads.at(JobClass::kMedium);
  const double runtime = w.runtime_at(w.max_replicas);
  auto killed = job(0, JobClass::kMedium, 3, 0.0);
  killed.task_timeout_s = runtime / 2;

  VectorTraceSource source({killed});
  SchedSimulator sim(64, cfg(PolicyMode::kElastic), workloads);
  std::vector<JobRecord> retired;
  const auto result = sim.run_stream(
      source, [&](const JobRecord& rec) { retired.push_back(rec); });

  EXPECT_EQ(result.metrics.jobs_timed_out, 1.0);
  EXPECT_EQ(result.metrics.jobs_abandoned, 0.0);
  ASSERT_EQ(retired.size(), 1u);
  EXPECT_TRUE(retired[0].timed_out);
  EXPECT_FALSE(retired[0].abandoned);
  // Killed after exactly task_timeout_s of runtime; the spent span is
  // charged as zero goodput.
  EXPECT_DOUBLE_EQ(retired[0].complete_time,
                   retired[0].start_time + runtime / 2);
  EXPECT_EQ(retired[0].goodput(), 0.0);
  // The kill released the slots: virtual time ends at the kill.
  EXPECT_DOUBLE_EQ(result.metrics.total_time_s, runtime / 2);
}

TEST(RunStream, TaskTimeoutAfterCompletionIsInert) {
  const auto workloads = analytic_workloads();
  const auto& w = workloads.at(JobClass::kMedium);
  auto easy = job(0, JobClass::kMedium, 3, 0.0);
  easy.task_timeout_s = 2.0 * w.runtime_at(w.max_replicas);
  VectorTraceSource source({easy});
  SchedSimulator sim(64, cfg(PolicyMode::kElastic), workloads);
  const auto result = sim.run_stream(source);
  EXPECT_EQ(result.metrics.jobs_timed_out, 0.0);
  EXPECT_NEAR(result.metrics.total_time_s, w.runtime_at(w.max_replicas), 1e-6);
}

TEST(RunStream, QueueAndTaskTimeoutInteraction) {
  // Job 1 carries BOTH limits; it abandons in the queue, so the task
  // timeout must never arm (abandoning is not a start).
  const auto workloads = analytic_workloads();
  const auto& w = workloads.at(JobClass::kMedium);
  const double runtime = w.runtime_at(16);
  auto both = job(1, JobClass::kMedium, 3, 0.0);
  both.queue_timeout_s = runtime / 4;
  both.task_timeout_s = runtime / 8;  // tighter than the queue timeout

  VectorTraceSource source({job(0, JobClass::kMedium, 3, 0.0), both});
  SchedSimulator sim(16, cfg(PolicyMode::kRigidMax), workloads);
  const auto result = sim.run_stream(source);
  EXPECT_EQ(result.metrics.jobs_abandoned, 1.0);
  EXPECT_EQ(result.metrics.jobs_timed_out, 0.0);
}

TEST(RunStream, PerJobFailureBudgetOverridesPlan) {
  const auto workloads = analytic_workloads();
  FaultPlan plan;
  plan.crash_times = {50.0};
  plan.checkpoint_period_s = 30.0;
  plan.max_failed_nodes = -1;  // plan-level budget: unlimited

  // Budget 0: the first crash fails the job even though the plan allows any
  // number of crashes (the per-job override is what prun's maxFailedNodes
  // does).
  auto strict = job(0, JobClass::kMedium, 3, 0.0);
  strict.max_failed_nodes = 0;
  {
    VectorTraceSource source({strict});
    SchedSimulator sim(64, cfg(PolicyMode::kElastic), workloads);
    sim.set_fault_plan(plan);
    const auto result = sim.run_stream(source);
    EXPECT_EQ(result.metrics.jobs_failed, 1.0);
  }

  // Unset budget falls back to the plan (unlimited): the job recovers.
  {
    VectorTraceSource source({job(0, JobClass::kMedium, 3, 0.0)});
    SchedSimulator sim(64, cfg(PolicyMode::kElastic), workloads);
    sim.set_fault_plan(plan);
    const auto result = sim.run_stream(source);
    EXPECT_EQ(result.metrics.jobs_failed, 0.0);
    EXPECT_EQ(result.metrics.failures, 1.0);
  }
}

TEST(RunStream, PeakLiveJobsTracksConcurrencyNotTraceLength) {
  const auto workloads = analytic_workloads();
  trace::SyntheticTraceConfig tcfg;
  tcfg.num_jobs = 5000;
  tcfg.submission_gap_s = 60.0;
  tcfg.defaults.queue_timeout_s = 3600.0;
  tcfg.defaults.task_timeout_s = 900.0;
  trace::SyntheticTraceSource source(tcfg);
  SchedSimulator sim(64, cfg(PolicyMode::kElastic), workloads);
  const auto result = sim.run_stream(source);
  EXPECT_EQ(result.stream.jobs_submitted, 5000);
  // The queue timeout bounds queued jobs at queue_timeout/gap = 60 and the
  // cluster bounds running ones; 5000 submitted jobs never pile up.
  EXPECT_LT(result.stream.peak_live_jobs, 200);
  EXPECT_GT(result.stream.peak_live_jobs, 0);
  // Online percentiles came from retired summaries, not retained records.
  EXPECT_TRUE(result.jobs.empty());
  EXPECT_GT(result.stream.response_p99, result.stream.response_p50);
}

// The million-job regression (ISSUE tentpole): completes in seconds and the
// peak live JobExec count stays at the in-flight scale. LABEL slow.
TEST(RunStreamMillion, BoundedMemoryMillionJobReplay) {
  const auto workloads = analytic_workloads();
  trace::SyntheticTraceConfig tcfg;
  tcfg.num_jobs = 1000000;
  tcfg.submission_gap_s = 60.0;
  tcfg.defaults.queue_timeout_s = 3600.0;
  tcfg.defaults.task_timeout_s = 900.0;
  trace::SyntheticTraceSource source(tcfg);
  SchedSimulator sim(64, cfg(PolicyMode::kElastic), workloads);
  const auto result = sim.run_stream(source);
  EXPECT_EQ(result.stream.jobs_submitted, 1000000);
  EXPECT_LT(result.stream.peak_live_jobs, 200);
  EXPECT_TRUE(result.jobs.empty());
  EXPECT_TRUE(result.trace.series("util").empty());
  const double accounted = result.metrics.jobs_abandoned +
                           result.metrics.jobs_timed_out +
                           result.metrics.jobs_failed;
  EXPECT_LT(accounted, 1000000.0);
  EXPECT_GT(result.metrics.utilization, 0.9);
}

}  // namespace
}  // namespace ehpc::schedsim
