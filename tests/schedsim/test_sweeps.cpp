#include "schedsim/sweeps.hpp"

#include <gtest/gtest.h>

namespace ehpc::schedsim {
namespace {

using elastic::PolicyMode;

ExperimentParams fast_params() {
  ExperimentParams p;
  p.repeats = 4;          // keep unit tests quick
  p.calibrated = false;   // analytic curves: no minicharm runs
  p.seed = 99;
  return p;
}

TEST(Sweeps, ComparePoliciesCoversAllFour) {
  auto metrics = compare_policies(fast_params());
  EXPECT_EQ(metrics.size(), 4u);
  for (const auto& [mode, m] : metrics) {
    EXPECT_GT(m.total_time_s, 0.0) << to_string(mode);
    EXPECT_GT(m.utilization, 0.0);
    EXPECT_LE(m.utilization, 1.0);
  }
}

TEST(Sweeps, ElasticBeatsRigidOnUtilization) {
  // The paper's headline: elastic has the highest utilization and the
  // lowest total time of the four policies.
  ExperimentParams p = fast_params();
  p.repeats = 8;
  p.submission_gap_s = 90.0;
  auto metrics = compare_policies(p);
  const auto& elastic = metrics.at(PolicyMode::kElastic);
  EXPECT_GE(elastic.utilization,
            metrics.at(PolicyMode::kRigidMin).utilization);
  EXPECT_GE(elastic.utilization,
            metrics.at(PolicyMode::kRigidMax).utilization);
  EXPECT_LE(elastic.total_time_s,
            metrics.at(PolicyMode::kRigidMin).total_time_s);
  EXPECT_LE(elastic.total_time_s,
            metrics.at(PolicyMode::kRigidMax).total_time_s);
}

TEST(Sweeps, SubmissionGapSweepProducesOnePointPerGap) {
  auto points = sweep_submission_gap(fast_params(), {0.0, 150.0, 300.0});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].x, 0.0);
  EXPECT_DOUBLE_EQ(points[2].x, 300.0);
  for (const auto& pt : points) EXPECT_EQ(pt.metrics.size(), 4u);
}

TEST(Sweeps, UtilizationDropsAsGapGrows) {
  ExperimentParams p = fast_params();
  p.repeats = 6;
  auto points = sweep_submission_gap(p, {0.0, 300.0});
  for (auto mode : {PolicyMode::kRigidMin, PolicyMode::kElastic}) {
    EXPECT_GT(points[0].metrics.at(mode).utilization,
              points[1].metrics.at(mode).utilization)
        << to_string(mode);
  }
}

TEST(Sweeps, RescaleGapSweepElasticApproachesMoldable) {
  // Paper Fig. 8: as T_rescale_gap grows, the elastic scheduler converges to
  // the moldable scheduler (which never rescales).
  ExperimentParams p = fast_params();
  p.repeats = 6;
  auto points = sweep_rescale_gap(p, {0.0, 100000.0});
  const auto& far = points[1].metrics;
  EXPECT_NEAR(far.at(PolicyMode::kElastic).total_time_s,
              far.at(PolicyMode::kMoldable).total_time_s,
              far.at(PolicyMode::kMoldable).total_time_s * 0.02);
  // And at gap 0 the elastic scheduler must differ (it rescales).
  const auto& near_ = points[0].metrics;
  EXPECT_LT(near_.at(PolicyMode::kElastic).total_time_s,
            near_.at(PolicyMode::kMoldable).total_time_s * 1.001);
}

TEST(Sweeps, RunSingleReturnsTraces) {
  auto result = run_single(fast_params(), PolicyMode::kElastic, 42);
  EXPECT_TRUE(result.trace.has("util"));
  EXPECT_EQ(result.jobs.size(), 16u);
}

}  // namespace
}  // namespace ehpc::schedsim
