#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ehpc::sim {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, FifoAmongEqualTimes) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation sim;
  double seen = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_after(3.0, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // already cancelled
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulation, CancelledEventDoesNotBlockOthers) {
  Simulation sim;
  int count = 0;
  EventId id = sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  sim.cancel(id);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(count, 1);
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(5.0, [&] { ++count; });
  EXPECT_EQ(sim.run_until(3.0), 1u);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulation, RunUntilAdvancesClockWhenEmpty) {
  Simulation sim;
  sim.run_until(7.0);
  EXPECT_DOUBLE_EQ(sim.now(), 7.0);
}

TEST(Simulation, EventsScheduledDuringRunExecute) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(Simulation, RejectsPastScheduling) {
  Simulation sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), PreconditionError);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), PreconditionError);
}

TEST(Simulation, StepExecutesExactlyOne) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, ExecutedCounterAccumulates) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(static_cast<Time>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 7u);
}

TEST(Simulation, PendingTracksCancellations) {
  Simulation sim;
  EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

}  // namespace
}  // namespace ehpc::sim
