#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <set>
#include <vector>

namespace ehpc::sim {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, FifoAmongEqualTimes) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation sim;
  double seen = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_after(3.0, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // already cancelled
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulation, CancelledEventDoesNotBlockOthers) {
  Simulation sim;
  int count = 0;
  EventId id = sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  sim.cancel(id);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(count, 1);
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(5.0, [&] { ++count; });
  EXPECT_EQ(sim.run_until(3.0), 1u);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulation, RunUntilAdvancesClockWhenEmpty) {
  Simulation sim;
  sim.run_until(7.0);
  EXPECT_DOUBLE_EQ(sim.now(), 7.0);
}

TEST(Simulation, EventsScheduledDuringRunExecute) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(Simulation, RejectsPastScheduling) {
  Simulation sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), PreconditionError);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), PreconditionError);
}

TEST(Simulation, StepExecutesExactlyOne) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, ExecutedCounterAccumulates) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(static_cast<Time>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 7u);
}

TEST(Simulation, PendingTracksCancellations) {
  Simulation sim;
  EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

// ---- semantics the arena/lane kernel must preserve ----

// FIFO among equal timestamps must hold across the internal lanes: events
// already pending at time T (scheduled earlier, from the heap/run) run
// before events scheduled at T once the clock reached it (the bucket).
TEST(Simulation, FifoAmongEqualTimesAcrossLanes) {
  Simulation sim;
  std::vector<int> order;
  // Scheduled "from the past": pending at time 2 with the smallest seqs.
  sim.schedule_at(2.0, [&] {
    order.push_back(0);
    // Same-timestamp chain started while the clock is exactly 2.
    sim.schedule_now([&] { order.push_back(2); });
    sim.schedule_after(0.0, [&] { order.push_back(3); });
  });
  sim.schedule_at(2.0, [&] { order.push_back(1); });
  sim.schedule_at(3.0, [&] { order.push_back(4); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, ScheduleNowRunsAtCurrentTime) {
  Simulation sim;
  double seen = -1.0;
  sim.schedule_at(4.0, [&] {
    sim.schedule_now([&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 4.0);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

// The full cancel contract: true exactly once, false for ran / already
// cancelled / never existed / forged ids.
TEST(Simulation, CancelReturnValueContract) {
  Simulation sim;
  EventId ran = sim.schedule_at(1.0, [] {});
  EventId cancelled = sim.schedule_at(2.0, [] {});
  EXPECT_TRUE(sim.cancel(cancelled));
  EXPECT_FALSE(sim.cancel(cancelled));  // already cancelled
  sim.run();
  EXPECT_FALSE(sim.cancel(ran));            // already executed
  EXPECT_FALSE(sim.cancel(kInvalidEvent));  // never a valid id
  // Forged id: right slot, wrong generation — must not cancel the live event.
  EventId live = sim.schedule_at(9.0, [] {});
  const EventId forged = (0xdeadbeefull << 32) | (live & 0xffffffffull);
  EXPECT_FALSE(sim.cancel(forged));
  EXPECT_TRUE(sim.cancel(live));
}

TEST(Simulation, CancelFromInsideEvent) {
  Simulation sim;
  bool ran = false;
  EventId victim = sim.schedule_at(2.0, [&] { ran = true; });
  sim.schedule_at(1.0, [&] { EXPECT_TRUE(sim.cancel(victim)); });
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, RunUntilAdvancesClockOnEarlyQueueDrain) {
  Simulation sim;
  sim.schedule_at(1.0, [] {});
  EXPECT_EQ(sim.run_until(10.0), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);  // clock reaches the horizon, not 1.0
  // A cancelled event must not hold the clock back either.
  EventId id = sim.schedule_at(11.0, [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.run_until(20.0), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);
}

// EventIds are single-use forever: recycled slots (after run or cancel)
// must never repeat an id.
TEST(Simulation, EventIdsNeverReusedAcrossSlotRecycling) {
  Simulation sim;
  std::set<EventId> ids;
  for (int round = 0; round < 200; ++round) {
    // Mix of cancelled (tombstoned, compacted) and executed events.
    std::array<EventId, 4> batch;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i] = sim.schedule_at(sim.now() + 1.0 + static_cast<double>(i),
                                 [] {});
      EXPECT_TRUE(ids.insert(batch[i]).second) << "duplicate EventId";
    }
    sim.cancel(batch[0]);
    sim.cancel(batch[2]);
    sim.run();
  }
  EXPECT_EQ(ids.size(), 800u);
}

// Regression (tentpole fix): cancelled events used to linger in the heap
// until popped, so schedule/cancel loops grew memory unboundedly. With
// tombstone compaction the internal queues stay bounded by the live count.
TEST(Simulation, ScheduleCancelChurnKeepsQueuesBounded) {
  Simulation sim;
  std::set<EventId> ids;
  sim.schedule_at(1e9, [] {});  // one live event pins a non-empty queue
  for (int i = 0; i < 100000; ++i) {
    EventId id = sim.schedule_at(static_cast<Time>(1 + i % 977), [] {});
    // Recycled slots must still mint fresh ids (non-reuse across compaction).
    ASSERT_TRUE(ids.insert(id).second) << "EventId reused, i=" << i;
    EXPECT_TRUE(sim.cancel(id));
    ASSERT_LE(sim.queue_size(), 128u) << "tombstones not compacted, i=" << i;
  }
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.run(), 1u);
}

// Same churn but leaving a growing live population; tombstones must stay
// below half the queue (compaction threshold) rather than accumulating.
TEST(Simulation, MixedChurnQueueTracksLivePopulation) {
  Simulation sim;
  std::size_t live = 0;
  for (int i = 0; i < 20000; ++i) {
    EventId keep = sim.schedule_at(1.0 + i, [] {});
    EventId drop = sim.schedule_at(2.0 + i, [] {});
    (void)keep;
    sim.cancel(drop);
    ++live;
    ASSERT_LE(sim.queue_size(), 2 * live + 64);
  }
  EXPECT_EQ(sim.pending(), live);
}

// Regression: the FIFO lanes must reclaim their consumed prefix even when
// the queue never fully drains. A self-rescheduling chain (always exactly
// one pending event) used to accrete one dead 24-byte item per event.
TEST(Simulation, SelfReschedulingChainReclaimsQueueStorage) {
  Simulation sim;
  int remaining = 300000;
  std::function<void()> next = [&] {
    if (--remaining > 0) sim.schedule_after(0.001, next);
  };
  sim.schedule_at(0.0, next);
  sim.run();
  EXPECT_EQ(remaining, 0);
  EXPECT_LE(sim.queue_capacity(), 16384u) << "consumed prefix not reclaimed";
}

TEST(Simulation, SameTimeChainReclaimsBucketStorage) {
  Simulation sim;
  int remaining = 300000;
  std::function<void()> next = [&] {
    if (--remaining > 0) sim.schedule_now(next);
  };
  sim.schedule_now(next);
  sim.run();
  EXPECT_EQ(remaining, 0);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_LE(sim.queue_capacity(), 16384u) << "consumed prefix not reclaimed";
}

TEST(Simulation, CallbacksLargerThanInlineBufferWork) {
  Simulation sim;
  std::array<double, 32> payload{};  // 256 bytes: heap-boxed callable
  payload[7] = 42.0;
  double seen = 0.0;
  sim.schedule_at(1.0, [payload, &seen] { seen = payload[7]; });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(Simulation, LargeCallbackCancelReleasesCleanly) {
  Simulation sim;
  auto payload = std::make_shared<std::vector<double>>(1000, 1.0);
  std::weak_ptr<std::vector<double>> watch = payload;
  EventId id = sim.schedule_at(1.0, [payload] { (void)payload; });
  payload.reset();
  EXPECT_FALSE(watch.expired());  // kept alive by the pending event
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_TRUE(watch.expired());  // cancel destroys the stored callable
}

// Out-of-order scheduling exercises the heap lane together with the others;
// global (time, seq) order must hold regardless of which lane holds what.
TEST(Simulation, MixedLaneOrderingMatchesGlobalTimeSeqOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&] { order.push_back(50); });   // run lane
  sim.schedule_at(9.0, [&] { order.push_back(90); });   // run lane (ascending)
  sim.schedule_at(3.0, [&] { order.push_back(30); });   // heap (backfill)
  sim.schedule_at(9.0, [&] { order.push_back(91); });   // run (ties run tail)
  sim.schedule_at(0.0, [&] { order.push_back(0); });    // bucket (time == now)
  sim.schedule_at(7.0, [&] { order.push_back(70); });   // heap (backfill)
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 30, 50, 70, 90, 91}));
}

}  // namespace
}  // namespace ehpc::sim
