#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace ehpc::sim {
namespace {

TEST(TraceRecorder, EmptySeriesLookups) {
  TraceRecorder tr;
  EXPECT_FALSE(tr.has("x"));
  EXPECT_TRUE(tr.series("x").empty());
  EXPECT_DOUBLE_EQ(tr.value_at("x", 1.0, -1.0), -1.0);
}

TEST(TraceRecorder, ValueAtFollowsStepFunction) {
  TraceRecorder tr;
  tr.record("u", 0.0, 1.0);
  tr.record("u", 10.0, 2.0);
  EXPECT_DOUBLE_EQ(tr.value_at("u", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(tr.value_at("u", 5.0), 1.0);
  EXPECT_DOUBLE_EQ(tr.value_at("u", 10.0), 2.0);
  EXPECT_DOUBLE_EQ(tr.value_at("u", 99.0), 2.0);
}

TEST(TraceRecorder, ValueBeforeFirstSampleIsFallback) {
  TraceRecorder tr;
  tr.record("u", 5.0, 3.0);
  EXPECT_DOUBLE_EQ(tr.value_at("u", 1.0, 0.5), 0.5);
}

TEST(TraceRecorder, AverageOfStepSeries) {
  TraceRecorder tr;
  tr.record("u", 0.0, 0.0);
  tr.record("u", 5.0, 1.0);
  EXPECT_DOUBLE_EQ(tr.average("u", 0.0, 10.0), 0.5);
}

TEST(TraceRecorder, AverageOverSubWindow) {
  TraceRecorder tr;
  tr.record("u", 0.0, 2.0);
  tr.record("u", 10.0, 4.0);
  EXPECT_DOUBLE_EQ(tr.average("u", 5.0, 15.0), 3.0);
}

TEST(TraceRecorder, RejectsTimeTravel) {
  TraceRecorder tr;
  tr.record("u", 5.0, 1.0);
  EXPECT_THROW(tr.record("u", 4.0, 1.0), PreconditionError);
}

TEST(TraceRecorder, NamesSorted) {
  TraceRecorder tr;
  tr.record("b", 0.0, 1.0);
  tr.record("a", 0.0, 1.0);
  EXPECT_EQ(tr.names(), (std::vector<std::string>{"a", "b"}));
}

TEST(TraceRecorder, CsvFormat) {
  TraceRecorder tr;
  tr.record("u", 0.0, 1.0);
  tr.record("u", 2.5, 3.0);
  EXPECT_EQ(tr.to_csv("u", "util"), "time,util\n0,1\n2.5,3\n");
}

}  // namespace
}  // namespace ehpc::sim
