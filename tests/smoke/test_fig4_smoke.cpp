// Fast deterministic smoke test over the Figure-4 strong-scaling logic.
//
// Runs the same measurement path as bench/fig4_scaling at tiny scale and pins
// golden time-per-step values, guarding the virtual-time machine model
// against silent regressions. The runtime is fully deterministic (virtual
// time, seeded RNG), so exact equality of rounded values is expected.

#include <gtest/gtest.h>

#include <vector>

#include "apps/calibration.hpp"

namespace ehpc::apps {
namespace {

TEST(Fig4Smoke, JacobiTinyScaleIsDeterministic) {
  const std::vector<int> replicas{2, 4};
  const auto a = measure_jacobi_scaling(256, replicas, 3);
  const auto b = measure_jacobi_scaling(256, replicas, 3);
  ASSERT_EQ(a.size(), replicas.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].replicas, replicas[i]);
    EXPECT_GT(a[i].time_per_step_s, 0.0);
    EXPECT_DOUBLE_EQ(a[i].time_per_step_s, b[i].time_per_step_s);
  }
  // Strong scaling: more replicas must not be slower at this size.
  EXPECT_LE(a[1].time_per_step_s, a[0].time_per_step_s);
}

TEST(Fig4Smoke, JacobiGoldenValues) {
  const auto pts = measure_jacobi_scaling(256, {2, 4}, 3);
  ASSERT_EQ(pts.size(), 2u);
  // Golden values captured from the seed machine model; update deliberately
  // if the model changes.
  EXPECT_NEAR(pts[0].time_per_step_s, 0.015602805999998987, 1e-12);
  EXPECT_NEAR(pts[1].time_per_step_s, 0.008455654000000111, 1e-12);
}

TEST(Fig4Smoke, LeanMdTinyScaleIsDeterministic) {
  LeanMdConfig md;
  md.cells_x = 2;
  md.cells_y = 2;
  md.cells_z = 2;
  md.atoms_per_cell = 40;
  md.real_atoms_per_cell = 4;
  md.max_iterations = 3;
  const auto a = measure_leanmd_scaling(md, {2, 4});
  const auto b = measure_leanmd_scaling(md, {2, 4});
  ASSERT_EQ(a.size(), 2u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GT(a[i].time_per_step_s, 0.0);
    EXPECT_DOUBLE_EQ(a[i].time_per_step_s, b[i].time_per_step_s);
  }
}

TEST(Fig4Smoke, ScalingCurveInterpolates) {
  const auto pts = measure_jacobi_scaling(256, {2, 4, 8}, 3);
  const auto curve = scaling_curve(pts);
  // The piecewise-linear curve must reproduce its knots exactly.
  for (const auto& p : pts) {
    EXPECT_NEAR(curve.at(static_cast<double>(p.replicas)), p.time_per_step_s,
                1e-12);
  }
}

}  // namespace
}  // namespace ehpc::apps
