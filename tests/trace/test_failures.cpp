#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "trace/failures.hpp"

namespace ehpc::trace {
namespace {

std::string write_temp(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::trunc);
  out << body;
  return path;
}

TEST(CsvFailureTraceSource, ParsesAllKinds) {
  const std::string path = write_temp(
      "failures_full.csv",
      "# time_s,kind[,domain]\n"
      "100,crash\n"
      "\n"
      "250.5,evict\n"
      "400,domain,2\n"
      "400,crash\n");
  const CsvFailureTraceSource source(path);
  const auto& events = source.events();
  ASSERT_EQ(events.size(), 4u);

  EXPECT_EQ(events[0].time_s, 100.0);
  EXPECT_EQ(events[0].kind, FailureEvent::Kind::kCrash);
  EXPECT_EQ(events[1].time_s, 250.5);
  EXPECT_EQ(events[1].kind, FailureEvent::Kind::kEvict);
  EXPECT_EQ(events[2].time_s, 400.0);
  EXPECT_EQ(events[2].kind, FailureEvent::Kind::kDomain);
  EXPECT_EQ(events[2].domain, 2);
  // Ties in time are legal; only strictly backwards times are rejected.
  EXPECT_EQ(events[3].time_s, 400.0);
  EXPECT_EQ(events[3].kind, FailureEvent::Kind::kCrash);
}

// Every parse failure must be a hard error naming the 1-based line number,
// same discipline as CsvTraceSource.
TEST(CsvFailureTraceSource, MalformedLinesErrorWithLineNumbers) {
  struct Case {
    const char* name;
    const char* body;
    const char* line_tag;
  };
  const std::vector<Case> cases{
      {"f_bad_time.csv", "12abc,crash\n", ":1:"},
      {"f_neg_time.csv", "-5,crash\n", ":1:"},
      {"f_bad_kind.csv", "10,explode\n", ":1:"},
      {"f_missing_field.csv", "10\n", ":1:"},
      {"f_too_many_fields.csv", "10,crash,1,2\n", ":1:"},
      {"f_domain_without_index.csv", "10,domain\n", ":1:"},
      {"f_bad_domain.csv", "10,domain,two\n", ":1:"},
      {"f_neg_domain.csv", "10,domain,-1\n", ":1:"},
      {"f_crash_with_domain.csv", "10,crash,0\n", ":1:"},
      {"f_backwards.csv", "# log\n100,crash\n50,evict\n", ":3:"},
  };
  for (const Case& c : cases) {
    const std::string path = write_temp(c.name, c.body);
    try {
      CsvFailureTraceSource source(path);
      FAIL() << c.name << ": expected PreconditionError";
    } catch (const PreconditionError& err) {
      EXPECT_NE(std::string(err.what()).find(c.line_tag), std::string::npos)
          << c.name << ": " << err.what();
    }
  }
}

TEST(CsvFailureTraceSource, MissingFileAndEmptyTraceAreErrors) {
  EXPECT_THROW(CsvFailureTraceSource("/nonexistent/failures.csv"),
               PreconditionError);
  const std::string path =
      write_temp("failures_empty.csv", "# only comments\n\n");
  EXPECT_THROW(CsvFailureTraceSource{path}, PreconditionError);
}

TEST(ResolveFailureTrace, AppendsEventsAndClearsPath) {
  const std::string path = write_temp("failures_resolve.csv",
                                      "100,crash\n"
                                      "200,evict\n"
                                      "300,domain,1\n");
  schedsim::FaultPlan plan;
  plan.crash_times = {10.0};
  plan.domain_sizes = {32, 32};
  plan.failure_trace_path = path;
  const schedsim::FaultPlan resolved = resolve_failure_trace(plan);

  EXPECT_TRUE(resolved.failure_trace_path.empty());
  EXPECT_EQ(resolved.crash_times, (std::vector<double>{10.0, 100.0}));
  EXPECT_EQ(resolved.evict_times, (std::vector<double>{200.0}));
  ASSERT_EQ(resolved.domain_crashes.size(), 1u);
  EXPECT_EQ(resolved.domain_crashes[0].time_s, 300.0);
  EXPECT_EQ(resolved.domain_crashes[0].domain, 1);
}

TEST(ResolveFailureTrace, PlanWithoutTracePassesThrough) {
  schedsim::FaultPlan plan;
  plan.crash_times = {42.0};
  const schedsim::FaultPlan resolved = resolve_failure_trace(plan);
  EXPECT_EQ(resolved.crash_times, plan.crash_times);
  EXPECT_TRUE(resolved.domain_crashes.empty());
}

// The merged plan is re-validated: a trace domain event needs the plan to
// carry a domain map, and the referenced domain must exist in it.
TEST(ResolveFailureTrace, DomainEventWithoutDomainMapIsRejected) {
  const std::string path =
      write_temp("failures_no_map.csv", "300,domain,0\n");
  schedsim::FaultPlan plan;
  plan.failure_trace_path = path;
  EXPECT_THROW(resolve_failure_trace(plan), PreconditionError);

  plan.domain_sizes = {16};  // domain 1 out of range
  const std::string path2 =
      write_temp("failures_bad_domain_ref.csv", "300,domain,1\n");
  plan.failure_trace_path = path2;
  EXPECT_THROW(resolve_failure_trace(plan), PreconditionError);
}

}  // namespace
}  // namespace ehpc::trace
