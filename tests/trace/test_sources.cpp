#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "elastic/workload.hpp"
#include "trace/sources.hpp"

namespace ehpc::trace {
namespace {

std::string write_temp(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::trunc);
  out << body;
  return path;
}

std::vector<schedsim::SubmittedJob> drain(TraceSource& source) {
  std::vector<schedsim::SubmittedJob> out;
  while (auto job = source.next()) out.push_back(*job);
  return out;
}

// ---- CSV ----

TEST(CsvTraceSource, ParsesAllColumns) {
  const std::string path = write_temp(
      "csv_full.csv",
      "# id,class,priority,submit,queue_timeout,task_timeout,max_failed\n"
      "0,small,2,0\n"
      "\n"
      "1,xlarge,5,10.5,3600\n"
      "2,medium,1,20,1800,900,2\n");
  CsvTraceSource source(path);
  const auto jobs = drain(source);
  ASSERT_EQ(jobs.size(), 3u);

  EXPECT_EQ(jobs[0].spec.id, 0);
  EXPECT_EQ(jobs[0].job_class, elastic::JobClass::kSmall);
  EXPECT_EQ(jobs[0].spec.priority, 2);
  EXPECT_EQ(jobs[0].submit_time, 0.0);
  // Columns absent and no defaults: limits stay unset.
  EXPECT_LT(jobs[0].queue_timeout_s, 0.0);
  EXPECT_LT(jobs[0].task_timeout_s, 0.0);
  EXPECT_LT(jobs[0].max_failed_nodes, 0);

  EXPECT_EQ(jobs[1].job_class, elastic::JobClass::kXLarge);
  EXPECT_EQ(jobs[1].submit_time, 10.5);
  EXPECT_EQ(jobs[1].queue_timeout_s, 3600.0);
  EXPECT_LT(jobs[1].task_timeout_s, 0.0);

  EXPECT_EQ(jobs[2].queue_timeout_s, 1800.0);
  EXPECT_EQ(jobs[2].task_timeout_s, 900.0);
  EXPECT_EQ(jobs[2].max_failed_nodes, 2);
}

TEST(CsvTraceSource, DefaultsFillMissingLimitColumns) {
  const std::string path = write_temp("csv_defaults.csv",
                                      "0,small,1,0\n"
                                      "1,large,3,5,100\n");
  JobDefaults defaults;
  defaults.queue_timeout_s = 60.0;
  defaults.task_timeout_s = 30.0;
  defaults.max_failed_nodes = 1;
  CsvTraceSource source(path, defaults);
  const auto jobs = drain(source);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].queue_timeout_s, 60.0);
  EXPECT_EQ(jobs[0].task_timeout_s, 30.0);
  EXPECT_EQ(jobs[0].max_failed_nodes, 1);
  // A present column overrides the default; absent ones keep it.
  EXPECT_EQ(jobs[1].queue_timeout_s, 100.0);
  EXPECT_EQ(jobs[1].task_timeout_s, 30.0);
}

TEST(CsvTraceSource, SpecMatchesClassTemplate) {
  const std::string path = write_temp("csv_spec.csv", "7,large,4,12\n");
  CsvTraceSource source(path);
  const auto jobs = drain(source);
  ASSERT_EQ(jobs.size(), 1u);
  const elastic::JobSpec want =
      elastic::spec_for_class(elastic::JobClass::kLarge, 7, 4);
  EXPECT_EQ(jobs[0].spec.min_replicas, want.min_replicas);
  EXPECT_EQ(jobs[0].spec.max_replicas, want.max_replicas);
  EXPECT_EQ(jobs[0].spec.priority, 4);
}

// Every parse failure must be a hard error naming the 1-based line number —
// the ad-hoc atoi/atof loader this source replaced yielded silent zeros.
TEST(CsvTraceSource, MalformedFieldsErrorWithLineNumbers) {
  struct Case {
    const char* name;
    const char* body;
    const char* line_tag;
  };
  const std::vector<Case> cases{
      {"bad_id.csv", "x,small,1,0\n", ":1:"},
      {"bad_class.csv", "0,tiny,1,0\n", ":1:"},
      {"bad_priority.csv", "0,small,one,0\n", ":1:"},
      {"bad_submit.csv", "0,small,1,12abc\n", ":1:"},
      {"missing_column.csv", "0,small,1\n", ":1:"},
      {"bad_timeout.csv", "# header\n0,small,1,0,nan?\n", ":2:"},
  };
  for (const Case& c : cases) {
    const std::string path = write_temp(c.name, c.body);
    CsvTraceSource source(path);
    try {
      drain(source);
      FAIL() << c.name << ": expected PreconditionError";
    } catch (const PreconditionError& err) {
      EXPECT_NE(std::string(err.what()).find(c.line_tag), std::string::npos)
          << c.name << ": " << err.what();
    }
  }
}

TEST(CsvTraceSource, RejectsBackwardsSubmitTimes) {
  const std::string path = write_temp("csv_backwards.csv",
                                      "0,small,1,100\n"
                                      "1,small,1,50\n");
  CsvTraceSource source(path);
  EXPECT_NO_THROW(source.next());
  try {
    source.next();
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& err) {
    EXPECT_NE(std::string(err.what()).find(":2:"), std::string::npos)
        << err.what();
  }
}

TEST(CsvTraceSource, MissingFileAndEmptyTraceAreErrors) {
  EXPECT_THROW(CsvTraceSource("/nonexistent/trace.csv"), PreconditionError);
  const std::string path = write_temp("csv_empty.csv", "# only comments\n\n");
  CsvTraceSource source(path);
  EXPECT_THROW(source.next(), PreconditionError);
}

// ---- synthetic ----

TEST(SyntheticTraceSource, DeterministicAndCounterBased) {
  SyntheticTraceConfig config;
  config.num_jobs = 200;
  config.submission_gap_s = 7.5;
  config.seed = 42;
  SyntheticTraceSource a(config);
  SyntheticTraceSource b(config);
  const auto ja = drain(a);
  const auto jb = drain(b);
  ASSERT_EQ(ja.size(), 200u);
  ASSERT_EQ(jb.size(), 200u);
  for (std::size_t i = 0; i < ja.size(); ++i) {
    EXPECT_EQ(ja[i].spec.id, static_cast<elastic::JobId>(i));
    EXPECT_EQ(ja[i].submit_time, 7.5 * static_cast<double>(i));
    EXPECT_EQ(ja[i].job_class, jb[i].job_class);
    EXPECT_EQ(ja[i].spec.priority, jb[i].spec.priority);
    EXPECT_GE(ja[i].spec.priority, 1);
    EXPECT_LE(ja[i].spec.priority, 5);
    // Identity is a pure function of (seed, index): pinned to trace_hash.
    const auto cls = static_cast<elastic::JobClass>(
        trace_hash(42, static_cast<std::uint64_t>(i), 0) % 4);
    EXPECT_EQ(ja[i].job_class, cls);
  }
}

TEST(SyntheticTraceSource, SeedChangesDraws) {
  SyntheticTraceConfig a_cfg;
  a_cfg.num_jobs = 64;
  SyntheticTraceConfig b_cfg = a_cfg;
  b_cfg.seed = a_cfg.seed + 1;
  SyntheticTraceSource a(a_cfg);
  SyntheticTraceSource b(b_cfg);
  const auto ja = drain(a);
  const auto jb = drain(b);
  int differing = 0;
  for (std::size_t i = 0; i < ja.size(); ++i) {
    if (ja[i].job_class != jb[i].job_class ||
        ja[i].spec.priority != jb[i].spec.priority) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(SyntheticTraceSource, StampsDefaults) {
  SyntheticTraceConfig config;
  config.num_jobs = 3;
  config.defaults.queue_timeout_s = 11.0;
  config.defaults.task_timeout_s = 22.0;
  config.defaults.max_failed_nodes = 3;
  SyntheticTraceSource source(config);
  for (const auto& job : drain(source)) {
    EXPECT_EQ(job.queue_timeout_s, 11.0);
    EXPECT_EQ(job.task_timeout_s, 22.0);
    EXPECT_EQ(job.max_failed_nodes, 3);
  }
}

TEST(TraceHash, LaneAndSeedSensitive) {
  EXPECT_EQ(trace_hash(1, 2, 3), trace_hash(1, 2, 3));
  EXPECT_NE(trace_hash(1, 2, 0), trace_hash(1, 2, 1));
  EXPECT_NE(trace_hash(1, 2, 0), trace_hash(2, 2, 0));
  EXPECT_NE(trace_hash(1, 2, 0), trace_hash(1, 3, 0));
}

// ---- cron ----

TEST(CronTraceSource, OccurrencesCoverPhaseThroughEndInclusive) {
  CronTraceConfig config;
  config.period_s = 600.0;
  config.phase_s = 100.0;
  config.end_s = 1900.0;  // 100, 700, 1300, 1900 — end is inclusive
  config.job_class = elastic::JobClass::kLarge;
  config.priority = 4;
  CronTraceSource source(config);
  const auto jobs = drain(source);
  ASSERT_EQ(jobs.size(), 4u);
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    EXPECT_EQ(jobs[k].submit_time, 100.0 + 600.0 * static_cast<double>(k));
    EXPECT_EQ(jobs[k].spec.id,
              config.id_base + static_cast<elastic::JobId>(k));
    EXPECT_EQ(jobs[k].job_class, elastic::JobClass::kLarge);
    EXPECT_EQ(jobs[k].spec.priority, 4);
  }
}

TEST(CronTraceSource, SingleOccurrenceWhenEndEqualsPhase) {
  CronTraceConfig config;
  config.period_s = 60.0;
  config.phase_s = 30.0;
  config.end_s = 30.0;
  CronTraceSource source(config);
  EXPECT_EQ(drain(source).size(), 1u);
}

// ---- composite ----

TEST(CompositeTraceSource, MergesInSubmitOrderWithIdTieBreak) {
  CronTraceConfig cron_cfg;
  cron_cfg.period_s = 40.0;
  cron_cfg.phase_s = 0.0;
  cron_cfg.end_s = 80.0;  // cron at 0, 40, 80 with ids >= id_base
  SyntheticTraceConfig synth_cfg;
  synth_cfg.num_jobs = 5;
  synth_cfg.submission_gap_s = 20.0;  // synthetic at 0, 20, 40, 60, 80

  std::vector<std::unique_ptr<TraceSource>> children;
  children.push_back(std::make_unique<CronTraceSource>(cron_cfg));
  children.push_back(std::make_unique<SyntheticTraceSource>(synth_cfg));
  CompositeTraceSource merged(std::move(children));

  const auto jobs = drain(merged);
  ASSERT_EQ(jobs.size(), 8u);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].submit_time, jobs[i - 1].submit_time);
    if (jobs[i].submit_time == jobs[i - 1].submit_time) {
      // Ties are deterministic: smaller job id first. Synthetic ids count
      // from 0, cron ids from id_base, so synthetic wins each tie.
      EXPECT_LT(jobs[i - 1].spec.id, jobs[i].spec.id);
    }
  }
  std::vector<double> times;
  for (const auto& job : jobs) times.push_back(job.submit_time);
  EXPECT_EQ(times, (std::vector<double>{0, 0, 20, 40, 40, 60, 80, 80}));
}

TEST(CompositeTraceSource, EmptyOrNullChildrenAreErrors) {
  EXPECT_THROW(CompositeTraceSource({}), PreconditionError);
  std::vector<std::unique_ptr<TraceSource>> children;
  children.push_back(nullptr);
  EXPECT_THROW(CompositeTraceSource(std::move(children)), PreconditionError);
}

}  // namespace
}  // namespace ehpc::trace
