#!/usr/bin/env python3
"""Check relative markdown links (and their #anchors) in the repo docs.

Usage:
  tools/check_links.py [FILE.md ...]

With no arguments, checks the repo's documentation set: README.md,
ROADMAP.md, PAPER.md, CHANGES.md and docs/*.md. For every markdown link
`[text](target)` in the checked files it verifies that

  - a relative path target exists (relative to the linking file);
  - a `#fragment` on a markdown target matches a heading in that file,
    using GitHub's slugification (lowercase, spaces to dashes, punctuation
    stripped);
  - a bare `#fragment` matches a heading in the linking file itself.

Absolute URLs (http/https/mailto) are not fetched — CI must not depend on
external availability. Exit code 0 = all links resolve, 1 = broken links
(one `file: detail` line each), 2 = a named input file is missing.

Stdlib only; no installs.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())     # drop code ticks
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)    # links -> text
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)                    # strip punctuation
    return text.replace(" ", "-")


def markdown_lines(path: Path):
    """Lines of `path` with fenced code blocks blanked out."""
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            yield ""
        else:
            yield "" if in_fence else line


def anchors_of(path: Path) -> set:
    anchors = set()
    counts = {}
    for line in markdown_lines(path):
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = slugify(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check_file(path: Path) -> list:
    errors = []
    for lineno, line in enumerate(markdown_lines(path), start=1):
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            ref, _, fragment = target.partition("#")
            if ref:
                dest = (path.parent / ref).resolve()
                if not dest.exists():
                    errors.append(f"{path}:{lineno}: broken link "
                                  f"'{target}' ({ref} does not exist)")
                    continue
            else:
                dest = path
            if fragment and dest.suffix == ".md":
                if fragment not in anchors_of(dest):
                    errors.append(f"{path}:{lineno}: broken anchor "
                                  f"'{target}' (no heading "
                                  f"'#{fragment}' in {dest.name})")
    return errors


def main(argv: list) -> int:
    root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(a) for a in argv]
        for f in files:
            if not f.is_file():
                print(f"error: no such file: {f}", file=sys.stderr)
                return 2
    else:
        files = sorted(
            p for p in [root / "README.md", root / "ROADMAP.md",
                        root / "PAPER.md", root / "CHANGES.md",
                        *(root / "docs").glob("*.md")] if p.is_file())

    errors = []
    for f in files:
        errors.extend(check_file(f))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'FAIL, ' + str(len(errors)) + ' broken link(s)' if errors else 'all links OK'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
