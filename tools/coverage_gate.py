#!/usr/bin/env python3
"""Gate line coverage of selected sources using plain gcov (no gcovr needed).

Usage: coverage_gate.py BUILD_DIR SOURCE_SUBSTRING MIN_PERCENT

SOURCE_SUBSTRING is matched against reported source *paths* (e.g.
"src/charm/load_balancer" covers the .cpp and inline code in the .hpp while
excluding tests/.../test_load_balancer.cpp); .gcda candidates are selected
by the substring's basename. Aggregates "Lines executed" over the matched
sources and exits 1 when the percentage is below MIN_PERCENT.

Run a coverage build first:
  cmake -B build-cov -S . -DCMAKE_BUILD_TYPE=Debug -DEHK_COVERAGE=ON
  cmake --build build-cov -j && (cd build-cov && ctest -j)
  tools/coverage_gate.py build-cov src/charm/load_balancer 98
"""

import re
import subprocess
import sys
import tempfile
from pathlib import Path


def main() -> int:
    if len(sys.argv) != 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    build_dir = Path(sys.argv[1])
    needle = sys.argv[2]
    min_percent = float(sys.argv[3])

    basename = needle.rsplit("/", 1)[-1]
    gcda = sorted(p for p in build_dir.rglob("*.gcda") if basename in p.name)
    if not gcda:
        print(f"error: no .gcda matching '{basename}' under {build_dir} "
              "(coverage build + test run required)", file=sys.stderr)
        return 2

    # gcov writes .gcov files into the cwd; keep them out of the tree.
    # Several TUs can report the same source (header inline code appears in
    # every including TU's stanza, each covering only the lines that TU
    # instantiated): keep one stanza per source path — the one instrumenting
    # the most lines (ties: best-covered), i.e. the most complete view. The
    # library TU's .gcda accumulates runs from every test binary linking it,
    # so that stanza is the suite-wide union; per-TU slivers can neither
    # dilute nor double-count the aggregate.
    best: dict[str, tuple[int, float]] = {}  # source -> (lines, percent)
    with tempfile.TemporaryDirectory() as tmp:
        for path in gcda:
            out = subprocess.run(
                ["gcov", "-n", str(path.resolve())],
                cwd=tmp, capture_output=True, text=True, check=False).stdout
            # Stanzas look like:  File 'src/charm/load_balancer.cpp'
            #                     Lines executed:97.30% of 111
            for match in re.finditer(
                    r"File '([^']*)'\nLines executed:([\d.]+)% of (\d+)", out):
                source, percent, lines = match.groups()
                if needle not in source:
                    continue
                candidate = (int(lines), float(percent))
                if candidate > best.get(source, (0, 0.0)):
                    best[source] = candidate

    if not best:
        print(f"error: gcov reported no source matching '{needle}'",
              file=sys.stderr)
        return 2
    covered = 0.0
    total = 0
    for source in sorted(best):
        lines, percent = best[source]
        covered += percent / 100.0 * lines
        total += lines
        print(f"{source}: {percent}% of {lines} lines")
    aggregate = 100.0 * covered / total
    print(f"aggregate '{needle}' line coverage: {aggregate:.2f}% "
          f"(floor {min_percent:.2f}%)")
    if aggregate + 1e-9 < min_percent:
        print(f"FAIL: coverage dropped below the committed floor", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
