#!/usr/bin/env python3
"""Compare benchmark results against committed baselines and fail on regression.

Two modes:

  perf_gate.py micro BASELINE.json CANDIDATE.json [--min-ratio R]
      BASELINE/CANDIDATE are Google Benchmark --benchmark_format=json files.
      For every baseline benchmark the candidate must reach at least
      R * baseline throughput (items_per_second when reported, else
      1 / real_time). Missing benchmarks fail; new candidate benchmarks
      warn that the baseline wants a refresh.

  perf_gate.py wall BASELINE_summary.json CANDIDATE_summary.json [--max-ratio R]
      BASELINE/CANDIDATE are bench_run_all summary.json files. Every bench's
      candidate wall_ms must stay within R * baseline wall_ms.

Tolerance policy: committed baselines are measured on the CI profile, but
runner hardware varies between jobs, so the gate is a guardrail against
*large* regressions (the default --min-ratio 0.4 trips on a >2.5x slowdown),
not a precision instrument. Numbers for the README/ROADMAP come from local
before/after runs on one machine.

Refresh workflow (after an intentional perf change):
  ./build/bench/bench_micro_benchmarks --benchmark_format=json \
      --benchmark_out=bench/baselines/micro/micro_benchmarks.json
  ./build/bench/bench_run_all --quick out_dir=bench/baselines/quick   # wall_ms
and commit the result, citing the change that moved the numbers.

Waiver: a known-noisy run can be re-gated with an explicit looser ratio,
e.g. `perf_gate.py micro ... --min-ratio 0.3`; lowering the default in CI
requires touching .github/workflows/ci.yml, which makes the waiver visible
in review.
"""

import argparse
import json
import sys
from pathlib import Path


def load_json(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def micro_throughput(entry: dict) -> float:
    """Benchmark throughput in ops/s (higher is better)."""
    if "items_per_second" in entry:
        return float(entry["items_per_second"])
    # real_time is per-iteration in `time_unit`; fall back to its inverse.
    return 1.0 / max(float(entry["real_time"]), 1e-12)


def gate_micro(args: argparse.Namespace) -> int:
    baseline = {
        b["name"]: b
        for b in load_json(args.baseline)["benchmarks"]
        if b.get("run_type", "iteration") == "iteration"
    }
    candidate = {
        b["name"]: b
        for b in load_json(args.candidate)["benchmarks"]
        if b.get("run_type", "iteration") == "iteration"
    }

    failures = []
    for name in sorted(baseline):
        if name not in candidate:
            failures.append(f"{name}: missing from candidate run")
            continue
        base = micro_throughput(baseline[name])
        cand = micro_throughput(candidate[name])
        ratio = cand / base if base > 0 else float("inf")
        status = "OK" if ratio >= args.min_ratio else "FAIL"
        print(f"{status:4} {name}: {cand / 1e6:.2f}M/s vs baseline "
              f"{base / 1e6:.2f}M/s (ratio {ratio:.2f}, floor "
              f"{args.min_ratio:.2f})")
        if ratio < args.min_ratio:
            failures.append(f"{name}: throughput ratio {ratio:.2f} < "
                            f"{args.min_ratio:.2f}")
    for name in sorted(set(candidate) - set(baseline)):
        print(f"note {name}: not in baseline — refresh "
              f"{args.baseline} to start gating it")

    if failures:
        print(f"\nFAIL: {len(failures)} micro-benchmark regression(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("see tools/perf_gate.py docstring for the refresh/waiver "
              "workflow", file=sys.stderr)
        return 1
    print("OK: all micro-benchmarks within tolerance")
    return 0


def gate_wall(args: argparse.Namespace) -> int:
    baseline = {b["bench"]: b for b in load_json(args.baseline)["benches"]}
    candidate = {b["bench"]: b for b in load_json(args.candidate)["benches"]}

    failures = []
    for name in sorted(baseline):
        if name not in candidate:
            failures.append(f"{name}: missing from candidate run")
            continue
        base = float(baseline[name]["wall_ms"])
        cand = float(candidate[name]["wall_ms"])
        if base <= 0:
            # A zero/negative baseline can never gate anything; fail closed.
            failures.append(f"{name}: baseline wall_ms {base} is not gateable "
                            "— refresh the committed baseline")
            continue
        ratio = cand / base
        status = "OK" if ratio <= args.max_ratio else "FAIL"
        print(f"{status:4} {name}: {cand:.1f} ms vs baseline {base:.1f} ms "
              f"(ratio {ratio:.2f}, ceiling {args.max_ratio:.2f})")
        if ratio > args.max_ratio:
            failures.append(f"{name}: wall-clock ratio {ratio:.2f} > "
                            f"{args.max_ratio:.2f}")
    for name in sorted(set(candidate) - set(baseline)):
        print(f"note {name}: not in baseline — refresh "
              f"{args.baseline} to start gating it")

    if failures:
        print(f"\nFAIL: {len(failures)} wall-clock regression(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("OK: all bench wall-clocks within tolerance")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="mode", required=True)

    micro = sub.add_parser("micro", help="gate Google Benchmark JSON output")
    micro.add_argument("baseline")
    micro.add_argument("candidate")
    micro.add_argument("--min-ratio", type=float, default=0.4,
                       help="candidate/baseline throughput floor "
                            "(default 0.4 = fail on >2.5x slowdown)")
    micro.set_defaults(func=gate_micro)

    wall = sub.add_parser("wall", help="gate bench_run_all summary.json wall_ms")
    wall.add_argument("baseline")
    wall.add_argument("candidate")
    wall.add_argument("--max-ratio", type=float, default=3.0,
                      help="candidate/baseline wall-clock ceiling "
                           "(default 3.0)")
    wall.set_defaults(func=gate_wall)

    args = parser.parse_args()
    for path in (args.baseline, args.candidate):
        if not Path(path).is_file():
            print(f"error: no such file: {path}", file=sys.stderr)
            return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
